package workload

import (
	"fmt"
	"math/rand"

	"dgmc/internal/faults"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// MobilityConfig parameterizes the mobility scenario: membership churn
// (the embedded Config, with Churn semantics) overlaid with repeated random
// network bipartitions and periodically flapping links — the workload of a
// network whose links come and go under motion, not just a lossy one.
type MobilityConfig struct {
	Config
	// Graph is the fabric the faults act on: partitions are drawn as
	// random connected cuts of it and flaps hit its real links. Required.
	Graph *topo.Graph
	// Partitions is the number of split/heal cycles spread evenly across
	// the event sequence (zero for none).
	Partitions int
	// PartitionHold is how long each split lasts. Defaults to an eighth of
	// the event span when zero.
	PartitionHold sim.Time
	// FlapLinks is how many distinct links flap periodically (zero for
	// none); FlapPeriod, FlapDuty, and FlapCycles parameterize each link's
	// flapping as in PeriodicFlaps (defaults: span/8, 0.3, 4).
	FlapLinks  int
	FlapPeriod sim.Time
	FlapDuty   float64
	FlapCycles int
}

// Mobility generates a churn event sequence plus the fault plan that
// batters it: Partitions random bipartitions of the graph, each held for
// PartitionHold and then healed, and FlapLinks links flapping periodically
// throughout. Everything derives from cfg.Seed, so a mobility run is
// reproducible from its config alone. Pair the returned plan with
// core.Domain.SchedulePartitionHeal so each heal also triggers protocol
// reconciliation.
func Mobility(cfg MobilityConfig) ([]Event, faults.Plan, error) {
	if cfg.Graph == nil {
		return nil, faults.Plan{}, fmt.Errorf("workload: mobility needs a graph")
	}
	if cfg.Graph.NumSwitches() != cfg.N {
		return nil, faults.Plan{}, fmt.Errorf("workload: graph has %d switches, config says %d",
			cfg.Graph.NumSwitches(), cfg.N)
	}
	if cfg.Partitions < 0 || cfg.FlapLinks < 0 {
		return nil, faults.Plan{}, fmt.Errorf("workload: negative fault counts")
	}
	events, err := Churn(cfg.Config)
	if err != nil {
		return nil, faults.Plan{}, err
	}
	first, last := Span(events)
	span := last - first
	if span <= 0 {
		span = cfg.MeanGap * sim.Time(cfg.Events)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7f4a7c15))
	plan := faults.Plan{Seed: cfg.Seed}

	if cfg.Partitions > 0 {
		hold := cfg.PartitionHold
		if hold <= 0 {
			hold = span / 8
			if hold < 1 {
				hold = 1
			}
		}
		// Spread the splits evenly across the span, each healing before the
		// next begins (one partition at a time keeps heals attributable).
		gap := span / sim.Time(cfg.Partitions+1)
		if gap <= hold {
			return nil, faults.Plan{}, fmt.Errorf(
				"workload: %d partitions holding %v each do not fit a span of %v", cfg.Partitions, hold, span)
		}
		for i := 0; i < cfg.Partitions; i++ {
			at := first + gap*sim.Time(i+1)
			plan.Partitions = append(plan.Partitions, faults.Partition{
				Groups: randomBipartition(rng, cfg.Graph),
				At:     at,
				HealAt: at + hold,
			})
		}
	}

	if cfg.FlapLinks > 0 {
		links := allLinks(cfg.Graph)
		if cfg.FlapLinks > len(links) {
			return nil, faults.Plan{}, fmt.Errorf("workload: %d flap links but the graph has %d", cfg.FlapLinks, len(links))
		}
		rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
		period := cfg.FlapPeriod
		if period <= 0 {
			period = span / 8
			if period < 2 {
				period = 2
			}
		}
		duty := cfg.FlapDuty
		if duty <= 0 || duty >= 1 {
			duty = 0.3
		}
		cycles := cfg.FlapCycles
		if cycles <= 0 {
			cycles = 4
		}
		for _, l := range links[:cfg.FlapLinks] {
			// Stagger starts so the flapping links are not phase-locked.
			start := first + sim.Time(rng.Int63n(int64(period)))
			plan.Flaps = append(plan.Flaps, faults.PeriodicFlaps(l[0], l[1], start, period, duty, cycles)...)
		}
	}

	if err := plan.Validate(); err != nil {
		return nil, faults.Plan{}, err
	}
	return events, plan, nil
}

// randomBipartition splits the graph into a random connected half and the
// rest: a BFS from a random seed switch claims about half the network for
// group A (so intra-A flooding keeps working during the split), and group B
// gets everything else. B's fragments each border A in a connected graph,
// so heal reconciliation across the boundary reaches all of them.
func randomBipartition(rng *rand.Rand, g *topo.Graph) [][]topo.SwitchID {
	n := g.NumSwitches()
	want := n / 2
	if want < 1 {
		want = 1
	}
	start := topo.SwitchID(rng.Intn(n))
	inA := map[topo.SwitchID]bool{start: true}
	queue := []topo.SwitchID{start}
	a := []topo.SwitchID{start}
	for len(queue) > 0 && len(a) < want {
		s := queue[0]
		queue = queue[1:]
		nbs := append([]topo.SwitchID(nil), g.Neighbors(s)...)
		rng.Shuffle(len(nbs), func(i, j int) { nbs[i], nbs[j] = nbs[j], nbs[i] })
		for _, nb := range nbs {
			if !inA[nb] && len(a) < want {
				inA[nb] = true
				a = append(a, nb)
				queue = append(queue, nb)
			}
		}
	}
	var b []topo.SwitchID
	for s := 0; s < n; s++ {
		if !inA[topo.SwitchID(s)] {
			b = append(b, topo.SwitchID(s))
		}
	}
	sortSwitches(a)
	sortSwitches(b)
	return [][]topo.SwitchID{a, b}
}

// allLinks lists the graph's links once each (a < b).
func allLinks(g *topo.Graph) [][2]topo.SwitchID {
	var out [][2]topo.SwitchID
	for s := 0; s < g.NumSwitches(); s++ {
		a := topo.SwitchID(s)
		for _, b := range g.Neighbors(a) {
			if a < b {
				out = append(out, [2]topo.SwitchID{a, b})
			}
		}
	}
	return out
}
