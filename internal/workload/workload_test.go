package workload

import (
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func validCfg() Config {
	return Config{N: 20, Events: 10, Seed: 1, Window: time.Millisecond, MeanGap: time.Millisecond}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few switches", func(c *Config) { c.N = 1 }},
		{"zero events", func(c *Config) { c.Events = 0 }},
		{"more events than switches", func(c *Config) { c.Events = 21 }},
		{"negative join bias", func(c *Config) { c.JoinBias = -0.1 }},
		{"join bias above one", func(c *Config) { c.JoinBias = 1.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validCfg()
			tt.mutate(&cfg)
			if _, err := Bursty(cfg); err == nil {
				t.Error("Bursty accepted invalid config")
			}
			if _, err := Sparse(cfg); err == nil {
				t.Error("Sparse accepted invalid config")
			}
		})
	}
	bad := validCfg()
	bad.Window = 0
	if _, err := Bursty(bad); err == nil {
		t.Error("Bursty accepted zero window")
	}
	bad = validCfg()
	bad.MeanGap = 0
	if _, err := Sparse(bad); err == nil {
		t.Error("Sparse accepted zero mean gap")
	}
}

func TestBurstyEventsWithinWindow(t *testing.T) {
	cfg := validCfg()
	cfg.Start = 5 * time.Millisecond
	events, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != cfg.Events {
		t.Fatalf("events = %d", len(events))
	}
	first, last := Span(events)
	if first < cfg.Start || last >= cfg.Start+cfg.Window {
		t.Errorf("events outside window: [%v,%v]", first, last)
	}
	// Sorted by time.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events unsorted")
		}
	}
}

func TestSparseEventsSeparated(t *testing.T) {
	cfg := validCfg()
	events, err := Sparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(events); i++ {
		gap := events[i].At - events[i-1].At
		if gap < cfg.MeanGap/2 {
			t.Errorf("gap %v below floor %v", gap, cfg.MeanGap/2)
		}
	}
}

func TestEventSequenceIsConsistent(t *testing.T) {
	// Every leave must target a current member; every join a switch that
	// never joined before (join → leave is allowed, rejoin is not).
	for seed := int64(0); seed < 30; seed++ {
		cfg := validCfg()
		cfg.Seed = seed
		cfg.Events = 15
		cfg.JoinBias = 0.5
		events, err := Bursty(cfg)
		if err != nil {
			t.Fatal(err)
		}
		members := map[topo.SwitchID]bool{}
		joined := map[topo.SwitchID]bool{}
		for _, e := range events {
			if e.Join {
				if joined[e.Switch] {
					t.Fatalf("seed %d: switch %d re-joined", seed, e.Switch)
				}
				joined[e.Switch] = true
				members[e.Switch] = true
				if e.Role != mctree.SenderReceiver {
					t.Fatalf("seed %d: default role = %v", seed, e.Role)
				}
			} else {
				if !members[e.Switch] {
					t.Fatalf("seed %d: leave of non-member %d", seed, e.Switch)
				}
				delete(members, e.Switch)
			}
		}
	}
}

func TestFirstEventIsAlwaysJoin(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := validCfg()
		cfg.Seed = seed
		cfg.JoinBias = 0.1 // leaves strongly preferred — but impossible first
		events, err := Sparse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !events[0].Join {
			t.Fatalf("seed %d: first event is a leave", seed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := validCfg()
	a, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	cfg.Seed = 2
	c, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestSpanEmpty(t *testing.T) {
	f, l := Span(nil)
	if f != 0 || l != 0 {
		t.Errorf("Span(nil) = %v,%v", f, l)
	}
	one := []Event{{At: sim.Time(5)}}
	f, l = Span(one)
	if f != 5 || l != 5 {
		t.Errorf("Span(single) = %v,%v", f, l)
	}
}

func TestCustomRole(t *testing.T) {
	cfg := validCfg()
	cfg.Role = mctree.Receiver
	cfg.JoinBias = 1.0
	events, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Role != mctree.Receiver {
			t.Fatalf("role = %v", e.Role)
		}
	}
}

func TestChurnAllowsRejoin(t *testing.T) {
	cfg := Config{N: 5, Events: 60, Seed: 3, MeanGap: sim.Time(time.Millisecond)}
	events, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 60 {
		t.Fatalf("generated %d events, want 60", len(events))
	}
	members := map[topo.SwitchID]bool{}
	joined := map[topo.SwitchID]int{}
	var prev sim.Time
	for i, e := range events {
		if e.At <= prev {
			t.Fatalf("event %d at %v not after %v", i, e.At, prev)
		}
		prev = e.At
		if e.Join {
			if members[e.Switch] {
				t.Fatalf("event %d: member %d joined twice", i, e.Switch)
			}
			members[e.Switch] = true
			joined[e.Switch]++
		} else {
			if !members[e.Switch] {
				t.Fatalf("event %d: non-member %d left", i, e.Switch)
			}
			delete(members, e.Switch)
		}
	}
	rejoins := 0
	for _, n := range joined {
		if n > 1 {
			rejoins++
		}
	}
	if rejoins == 0 {
		t.Error("60 events over 5 switches produced no rejoin")
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := Churn(Config{N: 1, Events: 5, MeanGap: 1}); err == nil {
		t.Error("tiny network accepted")
	}
	if _, err := Churn(Config{N: 5, Events: 0, MeanGap: 1}); err == nil {
		t.Error("zero events accepted")
	}
	if _, err := Churn(Config{N: 5, Events: 5}); err == nil {
		t.Error("zero mean gap accepted")
	}
	if _, err := Churn(Config{N: 5, Events: 5, MeanGap: 1, JoinBias: 2}); err == nil {
		t.Error("bad join bias accepted")
	}
}

func TestMobilityGenerator(t *testing.T) {
	g, err := topo.Grid(3, 4, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MobilityConfig{
		Config:     Config{N: 12, Events: 60, Seed: 5, MeanGap: 1000},
		Graph:      g,
		Partitions: 2,
		FlapLinks:  3,
	}
	events, plan, err := Mobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 60 {
		t.Fatalf("got %d events, want 60", len(events))
	}
	if len(plan.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(plan.Partitions))
	}
	first, last := Span(events)
	prevHeal := sim.Time(0)
	for i, p := range plan.Partitions {
		if len(p.Groups) != 2 {
			t.Fatalf("partition %d has %d groups", i, len(p.Groups))
		}
		if got := len(p.Groups[0]) + len(p.Groups[1]); got != 12 {
			t.Errorf("partition %d covers %d switches, want 12", i, got)
		}
		if p.At < first || p.HealAt > last+1 || p.HealAt <= p.At {
			t.Errorf("partition %d window %v..%v outside span %v..%v", i, p.At, p.HealAt, first, last)
		}
		if p.At < prevHeal {
			t.Errorf("partition %d overlaps the previous one", i)
		}
		prevHeal = p.HealAt
		// Group A must be internally connected so its side keeps flooding.
		inA := map[topo.SwitchID]bool{}
		for _, s := range p.Groups[0] {
			inA[s] = true
		}
		reached := map[topo.SwitchID]bool{p.Groups[0][0]: true}
		queue := []topo.SwitchID{p.Groups[0][0]}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(s) {
				if inA[nb] && !reached[nb] {
					reached[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(reached) != len(p.Groups[0]) {
			t.Errorf("partition %d: group A not connected (%d of %d reachable)", i, len(reached), len(p.Groups[0]))
		}
	}
	if len(plan.Flaps) != 3*4 {
		t.Fatalf("got %d flap windows, want 12 (3 links x 4 cycles)", len(plan.Flaps))
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	// Determinism: same config, same scenario.
	events2, plan2, err := Mobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events2) != len(events) || events2[0] != events[0] {
		t.Error("mobility events not reproducible from the seed")
	}
	if plan2.Describe() != plan.Describe() {
		t.Error("mobility fault plan not reproducible from the seed")
	}

	if _, _, err := Mobility(MobilityConfig{Config: cfg.Config}); err == nil {
		t.Error("missing graph accepted")
	}
	bad := cfg
	bad.Config.N = 5
	if _, _, err := Mobility(bad); err == nil {
		t.Error("graph/config size mismatch accepted")
	}
}
