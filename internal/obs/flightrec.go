package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// FlightRecorder is a fixed-size, lock-free, allocation-free ring of binary
// event records — the per-node "black box" behind the /flightrec admin
// endpoint. The data plane writes one record per noteworthy event (forward,
// each drop kind, FIB swap, LSA apply, resync, reconcile) from the transport
// receive goroutine, so the write path must cost near-nothing and may never
// block or allocate:
//
//   - a writer claims a slot with one atomic add on the cursor and then
//     publishes through a per-slot seqlock: it zeroes the slot's mark,
//     stores the five payload words, and stores the ticket as the mark
//     last (all atomic stores, no fences beyond what atomics provide);
//   - a reader (Snapshot) loads the mark before and after copying the
//     payload and discards the record if they disagree or are zero — a
//     torn record (writer lapped the reader mid-copy) is skipped, never
//     surfaced. With a ring sized well above the burst rate this loses
//     at most the handful of records being overwritten during the copy.
//
// The zero-size recorder and the nil recorder are both valid and record
// nothing, so call sites need no guards beyond the nil-receiver check
// Record itself performs.
type FlightRecorder struct {
	cursor atomic.Uint64
	mask   uint64
	slots  []flightSlot

	// lastAnomaly packs the most recent anomalous record (drop kinds,
	// resync fire, reconcile, rejoin) for the health surface: kind in the
	// low byte, the record's Unix-microsecond timestamp shifted left 8
	// (51 bits of time — UnixNano would overflow the word). One word so
	// readers never see a kind/time pair from two different records.
	lastAnomaly atomic.Uint64
}

// flightSlot is one ring entry: a seqlock mark (the claiming ticket; 0
// while the slot is empty or mid-write) plus five payload words.
type flightSlot struct {
	mark atomic.Uint64
	at   atomic.Int64  // UnixNano
	meta atomic.Uint64 // kind | conn<<8
	src  atomic.Uint64 // originating switch
	seq  atomic.Uint64 // per-source sequence
	arg  atomic.Uint64 // kind-specific (arrival switch, batch size, ...)
}

// RecKind is the flight-record taxonomy. Values are wire/format stable
// within a build but not across builds — records decode through the same
// binary, never from disk.
type RecKind uint8

const (
	// RecNone is the zero kind; it never appears in a valid record.
	RecNone RecKind = iota
	// RecOriginate: this switch sent a payload into the network.
	RecOriginate
	// RecForward: this switch relayed a payload (arg = arrival switch).
	RecForward
	// RecDeliver: payload handed to the local application.
	RecDeliver
	// RecDropNoEntry: payload for a connection with no FIB entry.
	RecDropNoEntry
	// RecDropNoRoute: payload stranded off-tree with no contact route.
	RecDropNoRoute
	// RecDropHops: payload exhausted its hop budget.
	RecDropHops
	// RecDropLoop: own payload looped back to its origin.
	RecDropLoop
	// RecFIBSwap: the forwarding table was recompiled (arg = entry count).
	RecFIBSwap
	// RecLSAApply: a batch of LSAs entered the machine (arg = batch size).
	RecLSAApply
	// RecResyncFired: the gap-resync timer fired for a connection.
	RecResyncFired
	// RecReconcile: partition-heal reconciliation ran (arg = links healed).
	RecReconcile
	// RecRejoin: cold rejoin-from-neighbors ran after a crash restart.
	RecRejoin

	recKindCount
)

var recKindNames = [recKindCount]string{
	RecNone:        "none",
	RecOriginate:   "originate",
	RecForward:     "forward",
	RecDeliver:     "deliver",
	RecDropNoEntry: "drop-no-entry",
	RecDropNoRoute: "drop-no-route",
	RecDropHops:    "drop-hops",
	RecDropLoop:    "drop-loop",
	RecFIBSwap:     "fib-swap",
	RecLSAApply:    "lsa-apply",
	RecResyncFired: "resync-fired",
	RecReconcile:   "reconcile",
	RecRejoin:      "rejoin",
}

// String returns the stable text name used in JSON dumps and dgmctop.
func (k RecKind) String() string {
	if k < recKindCount {
		return recKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Anomaly reports whether this kind should trip the health surface's
// "last anomaly" flag: every drop, plus the recovery machinery firing.
func (k RecKind) Anomaly() bool {
	switch k {
	case RecDropNoEntry, RecDropNoRoute, RecDropHops, RecDropLoop,
		RecResyncFired, RecReconcile, RecRejoin:
		return true
	}
	return false
}

// MarshalJSON renders the kind as its string name.
func (k RecKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the string names String produces (for reconstructors
// reading /flightrec dumps).
func (k *RecKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range recKindNames {
		if name == s {
			*k = RecKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown record kind %q", s)
}

// FlightRecord is one decoded ring entry.
type FlightRecord struct {
	// Ticket is the record's global write order on its node (1-based,
	// monotonic). Snapshot returns records sorted by it.
	Ticket uint64 `json:"ticket"`
	// AtNS is the record's wall-clock timestamp (UnixNano).
	AtNS int64 `json:"at_ns"`
	// Kind is the event taxonomy entry.
	Kind RecKind `json:"kind"`
	// Conn is the connection the event belongs to (0 when not applicable).
	Conn uint32 `json:"conn"`
	// Src is the originating switch of the packet, or the local switch for
	// control-plane records.
	Src uint32 `json:"src"`
	// Seq is the packet's per-source data sequence, or a kind-specific
	// counter for control-plane records.
	Seq uint64 `json:"seq"`
	// Arg is kind-specific: the arrival switch for forward/deliver/drop
	// records, the entry count for FIB swaps, the batch size for LSA
	// applies.
	Arg uint64 `json:"arg"`
}

// NewFlightRecorder builds a recorder holding the next power of two at or
// above size records (minimum 16). Size <= 0 returns nil — the disabled
// recorder, on which Record is a single branch.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]flightSlot, n)}
}

// Cap returns the ring capacity (0 for the nil recorder).
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record appends one event. Safe for any number of concurrent writers, safe
// on a nil receiver, lock-free, and allocation-free — it is called from the
// forward path with the packet in flight.
func (r *FlightRecorder) Record(kind RecKind, conn uint32, src uint32, seq, arg uint64) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	t := r.cursor.Add(1)
	s := &r.slots[(t-1)&r.mask]
	s.mark.Store(0)
	s.at.Store(now)
	s.meta.Store(uint64(kind) | uint64(conn)<<8)
	s.src.Store(uint64(src))
	s.seq.Store(seq)
	s.arg.Store(arg)
	s.mark.Store(t)
	if kind.Anomaly() {
		r.lastAnomaly.Store(uint64(kind) | uint64(now/1000)<<8)
	}
}

// Written returns the total number of records ever written (the ring keeps
// only the last Cap of them).
func (r *FlightRecorder) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// LastAnomaly returns the kind and timestamp of the most recent anomalous
// record, or (RecNone, zero time) if none has occurred.
func (r *FlightRecorder) LastAnomaly() (RecKind, time.Time) {
	if r == nil {
		return RecNone, time.Time{}
	}
	v := r.lastAnomaly.Load()
	if v == 0 {
		return RecNone, time.Time{}
	}
	return RecKind(v & 0xff), time.Unix(0, int64(v>>8)*1000)
}

// Snapshot decodes the ring's current contents, oldest first. Records being
// overwritten during the scan are skipped (seqlock mismatch), so a snapshot
// taken under live write load returns a consistent — if slightly shorter —
// tail. The result is freshly allocated; Snapshot never runs on the hot
// path.
func (r *FlightRecorder) Snapshot() []FlightRecord {
	if r == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		m1 := s.mark.Load()
		if m1 == 0 {
			continue
		}
		rec := FlightRecord{
			Ticket: m1,
			AtNS:   s.at.Load(),
			Seq:    s.seq.Load(),
			Arg:    s.arg.Load(),
			Src:    uint32(s.src.Load()),
		}
		meta := s.meta.Load()
		if s.mark.Load() != m1 {
			continue // torn: a writer claimed the slot mid-copy
		}
		rec.Kind = RecKind(meta & 0xff)
		rec.Conn = uint32(meta >> 8)
		if rec.Kind == RecNone || rec.Kind >= recKindCount {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ticket < out[j].Ticket })
	return out
}

// Sampled is the protocol-wide sampling decision: a packet is traced iff
// its per-source data sequence is a multiple of every. Because the decision
// is a pure function of the sequence number already carried in every data
// frame, each hop makes it independently with no extra wire bits, and the
// same 1-in-N subset is chosen at the origin, every relay, and every sink —
// which is what lets the offline reconstructor join per-hop records into
// complete paths. every <= 0 disables sampling.
func Sampled(seq uint64, every int) bool {
	return every > 0 && seq%uint64(every) == 0
}

// FlightDoc is the JSON document served by /flightrec: the node's identity
// plus decoded snapshots of its two rings — control/data events, and the
// sampled per-hop packet trace records kept in a separate ring so bursts of
// ordinary events cannot evict the sparse sampled-path evidence.
type FlightDoc struct {
	Switch  uint32         `json:"switch"`
	Cap     int            `json:"cap"`
	Written uint64         `json:"written"`
	Events  []FlightRecord `json:"events"`
	Hops    []FlightRecord `json:"hops"`
}
