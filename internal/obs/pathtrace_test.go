package obs

import (
	"testing"
)

// docFor builds a FlightDoc for switch sw with the given hop records.
func docFor(sw uint32, hops ...FlightRecord) *FlightDoc {
	return &FlightDoc{Switch: sw, Hops: hops}
}

func hop(kind RecKind, conn, src uint32, seq uint64, from uint32, at int64) FlightRecord {
	return FlightRecord{Kind: kind, Conn: conn, Src: src, Seq: seq, Arg: uint64(from), AtNS: at}
}

// TestReconstructLinearPath joins records from a 4-switch line
// 1 -> 2 -> 3 -> 4 where 4 delivers.
func TestReconstructLinearPath(t *testing.T) {
	docs := []*FlightDoc{
		docFor(1, hop(RecOriginate, 7, 1, 40, 0, 1000)),
		docFor(2, hop(RecForward, 7, 1, 40, 1, 1500)),
		docFor(3, hop(RecForward, 7, 1, 40, 2, 2100)),
		docFor(4, hop(RecDeliver, 7, 1, 40, 3, 2800)),
	}
	reports := ReconstructPaths(docs)
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rep := reports[0]
	if !rep.Complete {
		t.Fatalf("path not complete: %+v", rep)
	}
	if rep.Conn != 7 || rep.Src != 1 || rep.Seq != 40 {
		t.Fatalf("key = %s, want 7/1/40", rep.Key())
	}
	if len(rep.Hops) != 4 {
		t.Fatalf("hops = %d, want 4", len(rep.Hops))
	}
	wantLat := []int64{0, 500, 600, 700}
	for i, h := range rep.Hops {
		if h.LatencyNS != wantLat[i] {
			t.Fatalf("hop[%d] latency = %d, want %d (%+v)", i, h.LatencyNS, wantLat[i], h)
		}
	}
	if rep.Delivered != 1 || rep.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 1/0", rep.Delivered, rep.Dropped)
	}
	if rep.EndToEndNS != 1800 {
		t.Fatalf("e2e = %d, want 1800", rep.EndToEndNS)
	}
}

// TestReconstructFanout: origin 1 fans out to 2 and 3; both deliver, 3 also
// forwards to 4 where the packet is dropped on hops.
func TestReconstructFanout(t *testing.T) {
	docs := []*FlightDoc{
		docFor(1, hop(RecOriginate, 9, 1, 8, 0, 100)),
		docFor(2, hop(RecDeliver, 9, 1, 8, 1, 250)),
		docFor(3,
			hop(RecDeliver, 9, 1, 8, 1, 300),
			hop(RecForward, 9, 1, 8, 1, 310),
		),
		docFor(4, hop(RecDropHops, 9, 1, 8, 3, 460)),
	}
	reports := ReconstructPaths(docs)
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rep := reports[0]
	if !rep.Complete {
		t.Fatalf("fanout path should be complete: %+v", rep)
	}
	if rep.Delivered != 2 || rep.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 2/1", rep.Delivered, rep.Dropped)
	}
	if rep.EndToEndNS != 200 {
		t.Fatalf("e2e = %d, want 200 (slowest deliver)", rep.EndToEndNS)
	}
	// The drop at 4 came through 3's forward record: 460 - 310 = 150.
	var dropLat int64 = -2
	for _, h := range rep.Hops {
		if h.Kind == RecDropHops {
			dropLat = h.LatencyNS
		}
	}
	if dropLat != 150 {
		t.Fatalf("drop latency = %d, want 150", dropLat)
	}
}

// TestReconstructIncomplete: a missing upstream record (evicted ring) makes
// the chain unresolvable; the report survives but is not Complete.
func TestReconstructIncomplete(t *testing.T) {
	docs := []*FlightDoc{
		docFor(1, hop(RecOriginate, 5, 1, 16, 0, 100)),
		// switch 2's forward record was evicted
		docFor(3, hop(RecDeliver, 5, 1, 16, 2, 900)),
	}
	reports := ReconstructPaths(docs)
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Complete {
		t.Fatalf("broken chain must not be complete: %+v", rep)
	}
	if rep.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", rep.Delivered)
	}
	// E2E is still computable (origin + deliver present).
	if rep.EndToEndNS != 800 {
		t.Fatalf("e2e = %d, want 800", rep.EndToEndNS)
	}
	for _, h := range rep.Hops {
		if h.Kind == RecDeliver && h.LatencyNS != -1 {
			t.Fatalf("deliver latency = %d, want -1 (missing upstream)", h.LatencyNS)
		}
	}
}

// TestReconstructMultiplePackets groups by (conn, src, seq) and orders the
// result deterministically.
func TestReconstructMultiplePackets(t *testing.T) {
	docs := []*FlightDoc{
		docFor(1,
			hop(RecOriginate, 2, 1, 8, 0, 10),
			hop(RecOriginate, 1, 1, 8, 0, 20),
			hop(RecOriginate, 1, 1, 16, 0, 30),
		),
		docFor(2,
			hop(RecDeliver, 2, 1, 8, 1, 15),
			hop(RecDeliver, 1, 1, 8, 1, 25),
			hop(RecDeliver, 1, 1, 16, 1, 35),
		),
		nil, // nil docs are tolerated
	}
	reports := ReconstructPaths(docs)
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	wantKeys := []string{"1/1/8", "1/1/16", "2/1/8"}
	for i, w := range wantKeys {
		if reports[i].Key() != w {
			t.Fatalf("report[%d] = %s, want %s", i, reports[i].Key(), w)
		}
		if !reports[i].Complete {
			t.Fatalf("report %s should be complete", w)
		}
	}
}

// TestReconstructDuplicateScrapes: scraping the same node twice must not
// duplicate hops.
func TestReconstructDuplicateScrapes(t *testing.T) {
	d1 := docFor(1, hop(RecOriginate, 3, 1, 8, 0, 100))
	d2 := docFor(2, hop(RecDeliver, 3, 1, 8, 1, 200))
	reports := ReconstructPaths([]*FlightDoc{d1, d2, d1, d2})
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	if len(reports[0].Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (dedup)", len(reports[0].Hops))
	}
}

func TestExportPathMetrics(t *testing.T) {
	reg := NewRegistry()
	docs := []*FlightDoc{
		docFor(1, hop(RecOriginate, 7, 1, 40, 0, 1000)),
		docFor(2, hop(RecForward, 7, 1, 40, 1, 1500)),
		docFor(3, hop(RecDeliver, 7, 1, 40, 2, 2100)),
		docFor(4, hop(RecDropLoop, 7, 1, 40, 9, 2200)), // unresolvable upstream
	}
	reports := ReconstructPaths(docs)
	ExportPathMetrics(reg, reports)

	if got := reg.Counter("dgmc_path_reports_total").Value(); got != 1 {
		t.Fatalf("reports_total = %d, want 1", got)
	}
	if got := reg.Counter("dgmc_path_traced_drops_total").Value(); got != 1 {
		t.Fatalf("traced_drops_total = %d, want 1", got)
	}
	hopH := reg.Histogram("dgmc_path_hop_seconds", PathLatencyBounds)
	// Two resolved hops (forward at 2, deliver at 3); the drop's upstream
	// is missing so it is excluded from the histogram.
	if got := hopH.Count(); got != 2 {
		t.Fatalf("hop histogram count = %d, want 2", got)
	}
	e2eH := reg.Histogram("dgmc_path_e2e_seconds", PathLatencyBounds)
	if got := e2eH.Count(); got != 1 {
		t.Fatalf("e2e histogram count = %d, want 1", got)
	}
	// ExportPathMetrics(nil, ...) must be a no-op.
	ExportPathMetrics(nil, reports)
}
