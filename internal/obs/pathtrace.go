package obs

import (
	"fmt"
	"sort"
)

// This file is the offline half of sampled packet tracing: it joins the
// per-hop records each node kept locally (scraped as FlightDocs from
// /flightrec) into hop-by-hop path reports. The join key is (conn, src,
// seq) — the triple every data frame carries on the wire — and the hop
// chain reassembles through each record's Arg field, which holds the
// switch the packet arrived from. Latencies subtract the parent hop's
// timestamp at the upstream switch from the child's, so they are only
// meaningful to the extent the scraped nodes' clocks agree (exact for
// in-process clusters, NTP-grade for real deployments).

// PathHop is one switch's part in a sampled packet's journey.
type PathHop struct {
	// Switch is the node that wrote the record.
	Switch uint32 `json:"switch"`
	// Kind is what happened there: originate, forward, deliver, or a drop.
	Kind RecKind `json:"kind"`
	// AtNS is the record's timestamp at that switch.
	AtNS int64 `json:"at_ns"`
	// From is the switch the packet arrived from (meaningless for
	// originate hops).
	From uint32 `json:"from"`
	// LatencyNS is AtNS minus the upstream switch's forward/originate
	// timestamp for the same packet; negative-clamped to 0, and -1 when
	// the upstream record is missing (evicted or unscraped).
	LatencyNS int64 `json:"latency_ns"`
}

// PathReport is the reconstructed journey of one sampled packet.
type PathReport struct {
	Conn uint32 `json:"conn"`
	Src  uint32 `json:"src"`
	Seq  uint64 `json:"seq"`
	// Hops is every record found for the packet, time-ordered.
	Hops []PathHop `json:"hops"`
	// Complete means the report has the origination record, at least one
	// delivery, and an unbroken From-chain: every non-originate hop's
	// upstream record was found.
	Complete bool `json:"complete"`
	// Delivered counts deliver hops; Dropped counts drop hops.
	Delivered int `json:"delivered"`
	Dropped   int `json:"dropped"`
	// EndToEndNS is the slowest origination→delivery latency (0 when no
	// delivery was found).
	EndToEndNS int64 `json:"end_to_end_ns"`
}

// Key renders the join key for logs and map use.
func (p PathReport) Key() string { return fmt.Sprintf("%d/%d/%d", p.Conn, p.Src, p.Seq) }

type pathKey struct {
	conn uint32
	src  uint32
	seq  uint64
}

// hopRecKinds reports whether a flight record is a per-hop trace record the
// reconstructor understands.
func hopRecKind(k RecKind) bool {
	switch k {
	case RecOriginate, RecForward, RecDeliver,
		RecDropNoEntry, RecDropNoRoute, RecDropHops, RecDropLoop:
		return true
	}
	return false
}

// ReconstructPaths joins the hop records of the given flight documents into
// per-packet path reports, ordered by (conn, src, seq). Docs may overlap or
// repeat (idempotent records dedupe by switch+kind+from); nil docs are
// skipped.
func ReconstructPaths(docs []*FlightDoc) []PathReport {
	type hopID struct {
		sw   uint32
		kind RecKind
		from uint32
	}
	groups := make(map[pathKey]map[hopID]PathHop)
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, rec := range doc.Hops {
			if !hopRecKind(rec.Kind) {
				continue
			}
			k := pathKey{conn: rec.Conn, src: rec.Src, seq: rec.Seq}
			g := groups[k]
			if g == nil {
				g = make(map[hopID]PathHop)
				groups[k] = g
			}
			id := hopID{sw: doc.Switch, kind: rec.Kind, from: uint32(rec.Arg)}
			if prev, ok := g[id]; ok && prev.AtNS <= rec.AtNS {
				continue // duplicate scrape of the same record; keep first
			}
			g[id] = PathHop{
				Switch: doc.Switch,
				Kind:   rec.Kind,
				AtNS:   rec.AtNS,
				From:   uint32(rec.Arg),
			}
		}
	}

	reports := make([]PathReport, 0, len(groups))
	for k, g := range groups {
		rep := PathReport{Conn: k.conn, Src: k.src, Seq: k.seq}

		// parentAt: for each switch, the timestamp at which the packet
		// left it (originate or forward record written at that switch).
		parentAt := make(map[uint32]int64, len(g))
		for id, h := range g {
			if id.kind == RecOriginate || id.kind == RecForward {
				if at, ok := parentAt[h.Switch]; !ok || h.AtNS < at {
					parentAt[h.Switch] = h.AtNS
				}
			}
		}

		var originAt int64
		hasOrigin := false
		chainOK := true
		for _, h := range g {
			switch h.Kind {
			case RecOriginate:
				hasOrigin = true
				originAt = h.AtNS
				h.LatencyNS = 0
			case RecDeliver:
				rep.Delivered++
				h.LatencyNS = hopLatency(parentAt, h)
			case RecForward:
				h.LatencyNS = hopLatency(parentAt, h)
			default: // drops
				rep.Dropped++
				h.LatencyNS = hopLatency(parentAt, h)
			}
			if h.Kind != RecOriginate && h.LatencyNS < 0 {
				chainOK = false
			}
			rep.Hops = append(rep.Hops, h)
		}
		sort.Slice(rep.Hops, func(i, j int) bool {
			if rep.Hops[i].AtNS != rep.Hops[j].AtNS {
				return rep.Hops[i].AtNS < rep.Hops[j].AtNS
			}
			return rep.Hops[i].Switch < rep.Hops[j].Switch
		})
		rep.Complete = hasOrigin && rep.Delivered > 0 && chainOK
		if hasOrigin && rep.Delivered > 0 {
			for _, h := range rep.Hops {
				if h.Kind == RecDeliver {
					if d := h.AtNS - originAt; d > rep.EndToEndNS {
						rep.EndToEndNS = d
					}
				}
			}
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	return reports
}

// hopLatency resolves one hop's latency against the upstream departure
// timestamps: -1 when the upstream record is missing, clamped to 0 when
// clocks ran backwards between the two reads.
func hopLatency(parentAt map[uint32]int64, h PathHop) int64 {
	at, ok := parentAt[h.From]
	if !ok {
		return -1
	}
	if d := h.AtNS - at; d > 0 {
		return d
	}
	return 0
}

// PathLatencyBounds are the histogram bucket upper bounds (seconds) used by
// ExportPathMetrics: 1µs to ~4s in powers of 4.
var PathLatencyBounds = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1024e-6, 4096e-6, 16384e-6, 65536e-6, 0.26, 1.05, 4.2,
}

// ExportPathMetrics folds reconstructed path reports into the registry:
// per-hop and end-to-end latency histograms (seconds), plus counters for
// reconstructed/complete paths and traced drops. Call it after each
// reconstruction pass; it observes every report it is handed, so pass only
// new reports (or a fresh registry) to avoid double counting.
func ExportPathMetrics(reg *Registry, reports []PathReport) {
	if reg == nil {
		return
	}
	hopH := reg.Histogram("dgmc_path_hop_seconds", PathLatencyBounds)
	e2eH := reg.Histogram("dgmc_path_e2e_seconds", PathLatencyBounds)
	total := reg.Counter("dgmc_path_reports_total")
	complete := reg.Counter("dgmc_path_reports_complete_total")
	drops := reg.Counter("dgmc_path_traced_drops_total")
	for _, rep := range reports {
		total.Inc()
		if rep.Complete {
			complete.Inc()
		}
		drops.Add(uint64(rep.Dropped))
		for _, h := range rep.Hops {
			if h.Kind == RecOriginate || h.LatencyNS < 0 {
				continue
			}
			hopH.Observe(float64(h.LatencyNS) / 1e9)
		}
		if rep.EndToEndNS > 0 {
			e2eH.Observe(float64(rep.EndToEndNS) / 1e9)
		}
	}
}
