package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseSeriesLine parses one 0.0.4 series line `name{k="v",...} value` and
// returns the metric name, label names, and the *unescaped* label values.
// It fails the test on any structural violation: bad charset in names,
// unbalanced quotes, or an escape sequence the format does not define.
func parseSeriesLine(t *testing.T, line string) (string, []string, []string) {
	t.Helper()
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("series line has no label block or value: %q", line)
	}
	name := line[:i]
	if !promMetricName.MatchString(name) {
		t.Fatalf("metric name %q violates the 0.0.4 charset in %q", name, line)
	}
	var names, values []string
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				t.Fatalf("label block missing '=' in %q", line)
			}
			ln := rest[:eq]
			if !promLabelName.MatchString(ln) {
				t.Fatalf("label name %q violates the 0.0.4 charset in %q", ln, line)
			}
			names = append(names, ln)
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				t.Fatalf("label value not quoted in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
		scan:
			for {
				if len(rest) == 0 {
					t.Fatalf("unterminated label value in %q", line)
				}
				switch rest[0] {
				case '\\':
					if len(rest) < 2 {
						t.Fatalf("dangling backslash in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("undefined escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
				case '"':
					rest = rest[1:]
					break scan
				case '\n':
					t.Fatalf("raw newline inside label value in %q", line)
				default:
					val.WriteByte(rest[0])
					rest = rest[1:]
				}
			}
			values = append(values, val.String())
			if len(rest) == 0 {
				t.Fatalf("label block unterminated in %q", line)
			}
			if rest[0] == ',' {
				rest = rest[1:]
				continue
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			t.Fatalf("unexpected byte %q after label value in %q", rest[0], line)
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		t.Fatalf("series line missing value separator: %q", line)
	}
	if strings.TrimSpace(rest[1:]) == "" {
		t.Fatalf("series line missing value: %q", line)
	}
	return name, names, values
}

// FuzzPrometheusWrite feeds hostile metric names, label names, and label
// values (malformed UTF-8, quotes, newlines, backslashes) through the
// registry's text writer and requires the output to still be structurally
// valid 0.0.4 exposition text — and the label value to survive the
// escape/unescape round trip byte-for-byte.
func FuzzPrometheusWrite(f *testing.F) {
	f.Add("dgmc_ok_total", "reason", "plain")
	f.Add("", "", "")
	f.Add("9starts_with_digit", "9label", "value")
	f.Add("sp ace", "la bel", `quote " inside`)
	f.Add("new\nline", "key\n", "multi\nline\nvalue")
	f.Add(`back\slash`, `k\`, `trailing backslash \`)
	f.Add("\xff\xfe", "\x80", "\xc3\x28 invalid utf8")
	f.Add("mixed:colons_ok", "_", `\n literal then real
newline`)
	f.Add("héllo", "läbel", "värld")

	f.Fuzz(func(t *testing.T, name, labelKey, labelValue string) {
		reg := NewRegistry()
		reg.Counter(name, Label{Key: labelKey, Value: labelValue}).Add(3)

		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		out := buf.String()
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("output does not end in newline: %q", out)
		}
		lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")

		var series []string
		for _, line := range lines {
			if strings.HasPrefix(line, "# TYPE ") {
				fields := strings.Fields(line)
				if len(fields) != 4 {
					t.Fatalf("malformed TYPE line: %q", line)
				}
				if !promMetricName.MatchString(fields[2]) {
					t.Fatalf("TYPE line name %q invalid: %q", fields[2], line)
				}
				continue
			}
			series = append(series, line)
		}
		if len(series) != 1 {
			t.Fatalf("want exactly 1 series line, got %d:\n%s", len(series), out)
		}
		_, _, values := parseSeriesLine(t, series[0])
		if len(values) != 1 {
			t.Fatalf("want 1 label value, got %d in %q", len(values), series[0])
		}
		if values[0] != labelValue {
			t.Fatalf("label value did not round-trip:\n in: %q\nout: %q", labelValue, values[0])
		}
	})
}
