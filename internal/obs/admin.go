package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminConfig wires the admin HTTP surfaces. Any nil field disables its
// endpoint (the handler answers 404 with a short explanation).
type AdminConfig struct {
	// Registry backs GET /metrics (Prometheus text format).
	Registry *Registry
	// Spans backs GET /spans (JSON span trees + aggregate stats).
	Spans *SpanCollector
	// State, when set, is called per GET /state request and its result
	// rendered as indented JSON — the daemon supplies a snapshot of
	// per-connection protocol state here.
	State func() any
	// Flight, when set, is called per GET /flightrec request and must
	// return the node's decoded flight-recorder document (events + sampled
	// hop records). The path reconstructor consumes this endpoint.
	Flight func() *FlightDoc
	// Health, when set, backs GET /healthz with a JSON health summary
	// (convergence, gaps, resync arming, last recorder anomaly). dgmctop
	// scrapes this endpoint.
	Health func() any
}

// NewAdminMux builds the admin endpoint set: /metrics, /spans, /state, and
// the net/http/pprof profiler under /debug/pprof/. Serve it on an opt-in
// listener separate from any protocol transport.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.Error(w, "metrics registry not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Spans == nil {
			http.Error(w, "span collection not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Spans.WriteJSON(w)
	})

	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		if cfg.State == nil {
			http.Error(w, "state snapshot not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.State())
	})

	mux.HandleFunc("/flightrec", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Flight == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Flight())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health == nil {
			http.Error(w, "health surface not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Health())
	})

	// net/http/pprof registers only on http.DefaultServeMux; wire its
	// handlers into this mux explicitly so the profiler rides the same
	// opt-in admin listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("dgmc admin\n\n/metrics\n/spans\n/state\n/flightrec\n/healthz\n/debug/pprof/\n"))
	})

	return mux
}
