package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderBasic(t *testing.T) {
	r := NewFlightRecorder(16)
	if r.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", r.Cap())
	}
	r.Record(RecOriginate, 7, 3, 100, 0)
	r.Record(RecForward, 7, 3, 100, 3)
	r.Record(RecDeliver, 7, 3, 100, 1)
	recs := r.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("snapshot = %d records, want 3", len(recs))
	}
	for i, want := range []RecKind{RecOriginate, RecForward, RecDeliver} {
		if recs[i].Kind != want {
			t.Fatalf("rec[%d].Kind = %v, want %v", i, recs[i].Kind, want)
		}
		if recs[i].Conn != 7 || recs[i].Src != 3 || recs[i].Seq != 100 {
			t.Fatalf("rec[%d] = %+v, want conn=7 src=3 seq=100", i, recs[i])
		}
		if recs[i].Ticket != uint64(i+1) {
			t.Fatalf("rec[%d].Ticket = %d, want %d", i, recs[i].Ticket, i+1)
		}
		if recs[i].AtNS == 0 {
			t.Fatalf("rec[%d].AtNS = 0", i)
		}
	}
	if recs[1].Arg != 3 {
		t.Fatalf("forward Arg = %d, want 3", recs[1].Arg)
	}
	if got := r.Written(); got != 3 {
		t.Fatalf("Written = %d, want 3", got)
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 100; i++ {
		r.Record(RecForward, 1, 2, uint64(i), 0)
	}
	recs := r.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("snapshot after wrap = %d records, want 16", len(recs))
	}
	// Oldest surviving record is write 85 (ticket, 1-based), i.e. seq 84.
	for i, rec := range recs {
		if want := uint64(85 + i); rec.Ticket != want {
			t.Fatalf("rec[%d].Ticket = %d, want %d", i, rec.Ticket, want)
		}
		if want := uint64(84 + i); rec.Seq != want {
			t.Fatalf("rec[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestFlightRecorderSizing(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if r := NewFlightRecorder(0); r != nil {
		t.Fatalf("NewFlightRecorder(0) = %v, want nil", r)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(RecForward, 1, 2, 3, 4) // must not panic
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshot should be nil")
	}
	if r.Cap() != 0 || r.Written() != 0 {
		t.Fatal("nil recorder should report zero cap/written")
	}
	if k, at := r.LastAnomaly(); k != RecNone || !at.IsZero() {
		t.Fatalf("nil recorder LastAnomaly = %v, %v", k, at)
	}
}

func TestFlightRecorderLastAnomaly(t *testing.T) {
	r := NewFlightRecorder(16)
	if k, _ := r.LastAnomaly(); k != RecNone {
		t.Fatalf("fresh recorder anomaly = %v, want none", k)
	}
	r.Record(RecForward, 1, 2, 3, 0) // not an anomaly
	if k, _ := r.LastAnomaly(); k != RecNone {
		t.Fatalf("after forward, anomaly = %v, want none", k)
	}
	before := time.Now().Add(-time.Second)
	r.Record(RecDropHops, 1, 2, 3, 0)
	k, at := r.LastAnomaly()
	if k != RecDropHops {
		t.Fatalf("anomaly kind = %v, want drop-hops", k)
	}
	if at.Before(before) || at.After(time.Now().Add(time.Second)) {
		t.Fatalf("anomaly time %v out of range", at)
	}
	r.Record(RecResyncFired, 2, 0, 0, 0)
	if k, _ := r.LastAnomaly(); k != RecResyncFired {
		t.Fatalf("anomaly kind = %v, want resync-fired", k)
	}
}

// TestFlightRecorderConcurrent hammers the ring from several writer
// goroutines while a reader snapshots continuously: run under -race this is
// the seqlock's proof, and the decoded records must each be internally
// consistent (kind in range, the writer's stamped fields coherent).
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Stamp src=w and seq=i, arg = w^i so a torn record that
				// mixed two writes would break the invariant below.
				r.Record(RecForward, uint32(w), uint32(w), uint64(i), uint64(w)^uint64(i))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Snapshot() {
				if rec.Kind != RecForward {
					t.Errorf("unexpected kind %v", rec.Kind)
					return
				}
				if rec.Arg != uint64(rec.Src)^rec.Seq {
					t.Errorf("torn record surfaced: %+v", rec)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := r.Written(); got != writers*perWriter {
		t.Fatalf("Written = %d, want %d", got, writers*perWriter)
	}
	recs := r.Snapshot()
	if len(recs) == 0 {
		t.Fatal("quiescent snapshot is empty")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Ticket <= recs[i-1].Ticket {
			t.Fatalf("snapshot not ticket-ordered at %d", i)
		}
	}
}

// TestFlightRecorderRecordZeroAlloc pins the write path at 0 allocs — it
// runs on the forward path with the packet in flight.
func TestFlightRecorderRecordZeroAlloc(t *testing.T) {
	r := NewFlightRecorder(1024)
	allocs := testing.AllocsPerRun(500, func() {
		r.Record(RecForward, 9, 4, 77, 2)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
	var nilRec *FlightRecorder
	allocs = testing.AllocsPerRun(500, func() {
		nilRec.Record(RecForward, 9, 4, 77, 2)
	})
	if allocs != 0 {
		t.Fatalf("nil Record allocates %.1f/op, want 0", allocs)
	}
}

func TestRecKindJSONRoundTrip(t *testing.T) {
	for k := RecOriginate; k < recKindCount; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back RecKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %s -> %v", k, b, back)
		}
	}
	var k RecKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatal("unknown kind name should fail to unmarshal")
	}
}

func TestSampled(t *testing.T) {
	if Sampled(10, 0) || Sampled(0, 0) || Sampled(10, -1) {
		t.Fatal("sampling disabled should never sample")
	}
	if !Sampled(0, 8) || !Sampled(8, 8) || !Sampled(16, 8) {
		t.Fatal("multiples of every must be sampled")
	}
	if Sampled(1, 8) || Sampled(7, 8) || Sampled(9, 8) {
		t.Fatal("non-multiples must not be sampled")
	}
	if !Sampled(123, 1) {
		t.Fatal("every=1 samples everything")
	}
	// Epoch-namespaced sequences (epoch<<48 | counter) still sample
	// deterministically: the decision is a pure function of the word.
	seq := uint64(3)<<48 | 40
	if !Sampled(seq, 8) {
		t.Fatal("epoch-namespaced multiple should sample (2^48 ≡ 0 mod 8)")
	}
}

func TestFlightDocJSONRoundTrip(t *testing.T) {
	r := NewFlightRecorder(16)
	r.Record(RecFIBSwap, 0, 5, 1, 12)
	r.Record(RecDropNoRoute, 3, 2, 41, 4)
	doc := &FlightDoc{Switch: 5, Cap: r.Cap(), Written: r.Written(), Events: r.Snapshot()}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back FlightDoc
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Switch != 5 || len(back.Events) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Events[0].Kind != RecFIBSwap || back.Events[1].Kind != RecDropNoRoute {
		t.Fatalf("kinds did not survive: %+v", back.Events)
	}
}
