package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func entry(at int64, kind core.TraceKind, sw topo.SwitchID, chain core.ChainID) core.TraceEntry {
	return core.TraceEntry{
		At: sim.Time(at), Kind: kind, Switch: sw, Conn: 7, Chain: chain, Detail: "x",
	}
}

// TestSpanAssembly feeds the collector a hand-built distributed chain —
// event at switch 0, compute + flood, receipt and installs at 0/1/2 — and
// checks the reconstructed span's counts and convergence latency.
func TestSpanAssembly(t *testing.T) {
	c := NewSpanCollector(0)
	chain := core.ChainID{Origin: 0, Seq: 1}
	c.Trace(entry(100, core.TraceEvent, 0, chain))
	c.Trace(entry(110, core.TraceCompute, 0, chain))
	c.Trace(entry(120, core.TraceFlood, 0, chain))
	c.Trace(entry(130, core.TraceRecv, 1, chain))
	c.Trace(entry(131, core.TraceRecv, 2, chain))
	c.Trace(entry(140, core.TraceInstall, 0, chain))
	c.Trace(entry(150, core.TraceInstall, 1, chain))
	c.Trace(entry(160, core.TraceInstall, 2, chain))
	c.Trace(entry(90, core.TraceResync, 1, core.ChainID{})) // unchained: not kept

	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Chain != "0/1" || sp.Origin != 0 || sp.Seq != 1 || sp.Conn != 7 {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	if sp.Computations != 1 || sp.Floods != 1 || sp.Recvs != 2 || sp.Installs != 3 {
		t.Fatalf("span counts wrong: %+v", sp)
	}
	if sp.ConvergeNS != 60 { // last install at 160, event at 100
		t.Fatalf("ConvergeNS = %d, want 60", sp.ConvergeNS)
	}
	if sp.StartNS != 100 || sp.EndNS != 160 {
		t.Fatalf("span bounds = [%d, %d]", sp.StartNS, sp.EndNS)
	}
	if len(sp.Switches) != 3 || sp.Switches[0] != 0 || sp.Switches[2] != 2 {
		t.Fatalf("switches = %v", sp.Switches)
	}
	if len(sp.Steps) != 8 {
		t.Fatalf("steps = %d, want 8", len(sp.Steps))
	}

	st := c.Stats()
	if st.Spans != 1 || st.Converged != 1 || st.Unchained != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanComputations != 1 || st.MeanFloods != 1 || st.MeanConvergeNS != 60 || st.MaxConvergeNS != 60 {
		t.Fatalf("stats aggregates = %+v", st)
	}

	if got, ok := c.Span(chain); !ok || got.Chain != "0/1" {
		t.Fatalf("Span lookup = %+v, %v", got, ok)
	}
	if _, ok := c.Span(core.ChainID{Origin: 9, Seq: 9}); ok {
		t.Fatal("unknown chain must not resolve")
	}
}

func TestSpanEviction(t *testing.T) {
	c := NewSpanCollector(2)
	for i := 1; i <= 3; i++ {
		c.Trace(entry(int64(i), core.TraceEvent, 0, core.ChainID{Origin: 0, Seq: uint32(i)}))
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	if spans[0].Chain != "0/2" || spans[1].Chain != "0/3" {
		t.Fatalf("oldest not evicted: %v, %v", spans[0].Chain, spans[1].Chain)
	}
	if st := c.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
}

func TestSpanWriteJSON(t *testing.T) {
	c := NewSpanCollector(0)
	chain := core.ChainID{Origin: 3, Seq: 2}
	c.Trace(entry(10, core.TraceEvent, 3, chain))
	c.Trace(entry(25, core.TraceInstall, 3, chain))
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats SpanStats `json:"stats"`
		Spans []Span    `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, buf.String())
	}
	if doc.Stats.Spans != 1 || len(doc.Spans) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Spans[0].Chain != "3/2" || doc.Spans[0].ConvergeNS != 15 {
		t.Fatalf("span = %+v", doc.Spans[0])
	}
}

func TestSpanCollectorConcurrent(t *testing.T) {
	c := NewSpanCollector(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				chain := core.ChainID{Origin: topo.SwitchID(g), Seq: uint32(i%16 + 1)}
				c.Trace(core.TraceEntry{
					At: sim.Time(i), Kind: core.TraceFlood,
					Switch: topo.SwitchID(g), Conn: lsa.ConnID(1), Chain: chain,
				})
				if i%50 == 0 {
					c.Spans()
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(c.Spans()) == 0 {
		t.Fatal("no spans retained")
	}
}

// BenchmarkSpanCollectorTrace measures the per-entry collection cost.
func BenchmarkSpanCollectorTrace(b *testing.B) {
	c := NewSpanCollector(1024)
	e := entry(1, core.TraceFlood, 0, core.ChainID{Origin: 0, Seq: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Trace(e)
	}
}
