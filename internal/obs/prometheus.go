package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, then one line
// per series; histograms expand into _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a snapshot in the Prometheus text format. Snap is
// already sorted by name, so families are contiguous.
func (s Snap) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, p := range s {
		name := sanitizeMetricName(p.Name)
		if name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, p.Kind)
			lastFamily = name
		}
		switch p.Kind {
		case KindHistogram:
			for _, bk := range p.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.Le, 1) {
					le = formatFloat(bk.Le)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, labelString(p.Labels, Label{"le", le}), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelString(p.Labels), formatFloat(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(p.Labels), p.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", name, labelString(p.Labels), formatFloat(p.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...} (empty string for no labels).
func labelString(labels []Label, extra ...Label) string {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sanitizeMetricName(name string) string {
	return sanitize(name, func(r rune, first bool) bool {
		return r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(!first && r >= '0' && r <= '9')
	})
}

func sanitizeLabelName(name string) string {
	return sanitize(name, func(r rune, first bool) bool {
		return r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(!first && r >= '0' && r <= '9')
	})
}

func sanitize(name string, valid func(r rune, first bool) bool) string {
	var b strings.Builder
	for i, r := range name {
		if valid(r, i == 0) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
