// Package obs is the protocol observability layer: a lock-cheap metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// snapshot/delta and Prometheus text export), a causal span collector that
// reconstructs distributed event→compute→flood→recv→install chains from
// core.TraceEntry streams, and the HTTP admin surfaces (/metrics, /spans,
// /state, /debug/pprof) the live daemon exposes.
//
// The package is designed around two constraints:
//
//   - Near-zero cost when disabled. Every instrument is nil-safe: a nil
//     *Registry hands out nil *Counter/*Gauge/*Histogram handles whose
//     methods return immediately, so instrumented hot paths pay one
//     predictable nil check when observability is off.
//
//   - Race-free when enabled. Instruments are plain atomics, the span
//     collector is mutex-guarded, and scrape-time callbacks (CounterFunc/
//     GaugeFunc) let runtimes export state guarded by their own locks
//     without touching the hot path at all.
//
// Both the discrete-event simulator (internal/core driving internal/sim)
// and the live runtime (internal/rt, cmd/dgmcd) feed the same types; only
// the clock differs (virtual time vs. wall clock).
package obs
