package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	r.CounterFunc("f", func() float64 { return 1 })
	r.GaugeFunc("f2", func() float64 { return 2 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q", sb.String())
	}
}

func TestRegistryIdempotentAndCounts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", L("sw", "1"))
	b := r.Counter("reqs", L("sw", "1"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("reqs", L("sw", "2"))
	if a == other {
		t.Fatal("different labels must be distinct series")
	}
	a.Inc()
	a.Add(2)
	other.Inc()
	if a.Value() != 3 || other.Value() != 1 {
		t.Fatalf("counter values = %d, %d", a.Value(), other.Value())
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}

	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if got := h.Sum(); math.Abs(got-55.55) > 1e-9 {
		t.Fatalf("hist sum = %v, want 55.55", got)
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	r.CounterFunc("fn", func() float64 { return 42 })
	c.Add(10)
	g.Set(5)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	prev := r.Snapshot()
	if len(prev) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(prev))
	}
	byName := map[string]Point{}
	for _, p := range prev {
		byName[p.Name] = p
	}
	if byName["c"].Value != 10 || byName["g"].Value != 5 || byName["fn"].Value != 42 {
		t.Fatalf("unexpected values: %+v", byName)
	}
	hp := byName["h"]
	if hp.Count != 3 || len(hp.Buckets) != 3 {
		t.Fatalf("hist point = %+v", hp)
	}
	// Buckets are cumulative: ≤1 holds 1, ≤2 holds 2, +Inf holds 3.
	if hp.Buckets[0].Count != 1 || hp.Buckets[1].Count != 2 || hp.Buckets[2].Count != 3 {
		t.Fatalf("cumulative buckets = %+v", hp.Buckets)
	}
	if !math.IsInf(hp.Buckets[2].Le, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", hp.Buckets[2].Le)
	}

	c.Add(7)
	g.Set(2)
	h.Observe(0.1)
	delta := r.Snapshot().Delta(prev)
	byName = map[string]Point{}
	for _, p := range delta {
		byName[p.Name] = p
	}
	if byName["c"].Value != 7 {
		t.Fatalf("counter delta = %v, want 7", byName["c"].Value)
	}
	if byName["g"].Value != 2 {
		t.Fatalf("gauge must pass through, got %v", byName["g"].Value)
	}
	if byName["h"].Count != 1 || byName["h"].Buckets[0].Count != 1 {
		t.Fatalf("hist delta = %+v", byName["h"])
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", []float64{0.5})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%2) * 0.9)
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dgmc_floods_total", L("switch", "3")).Add(2)
	r.Gauge("dgmc_depth").Set(4)
	h := r.Histogram("dgmc_lat_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dgmc_floods_total counter",
		`dgmc_floods_total{switch="3"} 2`,
		"# TYPE dgmc_depth gauge",
		"dgmc_depth 4",
		"# TYPE dgmc_lat_seconds histogram",
		`dgmc_lat_seconds_bucket{le="0.5"} 1`,
		`dgmc_lat_seconds_bucket{le="1"} 1`,
		`dgmc_lat_seconds_bucket{le="+Inf"} 2`,
		"dgmc_lat_seconds_sum 2.25",
		"dgmc_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad name-1", L("bad key", "line\nbreak \"quoted\" back\\slash")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `bad_name_1{bad_key="line\nbreak \"quoted\" back\\slash"} 1`) {
		t.Fatalf("sanitization wrong:\n%s", out)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// BenchmarkCounterDisabled bounds the nil-registry fast path: the cost an
// instrumented hot path pays when observability is off.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterEnabled is the enabled counterpart (one atomic add).
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramEnabled measures one observation (search + 3 atomics).
func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
