package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "switch", Value: "3"}.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an instrument.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String implements fmt.Stringer (Prometheus type names).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. The nil *Counter a nil
// Registry hands out discards all operations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat is a float64 updated by CAS, for histogram sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram distributes observations over fixed upper-bound buckets (an
// implicit +Inf bucket catches the rest). Nil-safe like Counter.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; counts[i] ≤ bounds[i], last = +Inf
	sum    atomicFloat
	n      atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// ExponentialBuckets returns n upper bounds starting at start, each factor
// times the previous — the usual latency-bucket shape.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 10µs–10s in decade-and-a-half steps, suitable for
// protocol handling latencies in seconds.
var DurationBuckets = []float64{
	10e-6, 50e-6, 100e-6, 500e-6, 1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3, 1, 5, 10,
}

// instrument is one registered metric series.
type instrument struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // scrape-time callback (counter or gauge semantics)
}

// Registry holds a process's instruments. The zero registry is not usable;
// call NewRegistry. A nil *Registry is the disabled fast path: every
// constructor returns a nil instrument and every callback registration is
// dropped.
//
// Constructors are idempotent: asking twice for the same (name, labels)
// returns the same instrument, so callers may either cache handles at
// setup (hot paths) or look them up lazily (per-connection series).
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	order []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// seriesKey is the canonical identity of a series: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return append([]Label(nil), labels...)
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register returns the existing instrument for (name, labels) or inserts
// the one built by mk. Must be called with r non-nil.
func (r *Registry) register(name string, labels []Label, kind Kind, mk func() *instrument) *instrument {
	labels = sortedLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		return in
	}
	in := mk()
	in.name = name
	in.labels = labels
	in.kind = kind
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns (registering on first use) the counter for (name, labels).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := r.register(name, labels, KindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	})
	return in.counter
}

// Gauge returns (registering on first use) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := r.register(name, labels, KindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	})
	return in.gauge
}

// Histogram returns (registering on first use) the histogram for
// (name, labels) with the given ascending upper bounds. Bounds are fixed at
// first registration; later calls with different bounds get the original.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	in := r.register(name, labels, KindHistogram, func() *instrument {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &instrument{hist: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	})
	return in.hist
}

// CounterFunc registers a scrape-time callback exported with counter
// semantics (monotonic). Use it to surface counters that already live
// behind another lock — the hot path pays nothing.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, labels, KindCounter, func() *instrument {
		return &instrument{fn: fn}
	})
}

// GaugeFunc registers a scrape-time callback exported with gauge semantics.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, labels, KindGauge, func() *instrument {
		return &instrument{fn: fn}
	})
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	Le    float64 // upper bound (+Inf for the last)
	Count uint64  // observations ≤ Le (cumulative)
}

// Point is one series' state at snapshot time.
type Point struct {
	Name   string
	Labels []Label
	Kind   Kind

	// Value holds counters and gauges.
	Value float64
	// Count, Sum, and Buckets hold histograms.
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Snap is a registry snapshot: one Point per series, sorted by name then
// labels, safe to keep while the registry keeps moving.
type Snap []Point

// Snapshot captures every series, including scrape-time callbacks. Safe for
// concurrent use with instrument updates; a nil registry yields nil.
func (r *Registry) Snapshot() Snap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ins := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	out := make(Snap, 0, len(ins))
	for _, in := range ins {
		p := Point{Name: in.name, Labels: in.labels, Kind: in.kind}
		switch {
		case in.fn != nil:
			p.Value = in.fn()
		case in.counter != nil:
			p.Value = float64(in.counter.Value())
		case in.gauge != nil:
			p.Value = float64(in.gauge.Value())
		case in.hist != nil:
			var cum uint64
			p.Buckets = make([]Bucket, 0, len(in.hist.bounds)+1)
			for i, b := range in.hist.bounds {
				cum += in.hist.counts[i].Load()
				p.Buckets = append(p.Buckets, Bucket{Le: b, Count: cum})
			}
			cum += in.hist.counts[len(in.hist.bounds)].Load()
			p.Buckets = append(p.Buckets, Bucket{Le: math.Inf(1), Count: cum})
			p.Count = in.hist.Count()
			p.Sum = in.hist.Sum()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return seriesKey("", out[i].Labels) < seriesKey("", out[j].Labels)
	})
	return out
}

// Delta returns s with every counter and histogram reduced by its value in
// prev (matched by name and labels); gauges pass through unchanged, and
// series absent from prev pass through whole. Use it to report per-interval
// rates from cumulative instruments.
func (s Snap) Delta(prev Snap) Snap {
	idx := make(map[string]*Point, len(prev))
	for i := range prev {
		p := &prev[i]
		idx[seriesKey(p.Name, p.Labels)] = p
	}
	out := make(Snap, 0, len(s))
	for _, p := range s {
		old, ok := idx[seriesKey(p.Name, p.Labels)]
		if ok && old.Kind == p.Kind {
			switch p.Kind {
			case KindCounter:
				p.Value -= old.Value
			case KindHistogram:
				p.Count -= old.Count
				p.Sum -= old.Sum
				bs := append([]Bucket(nil), p.Buckets...)
				for i := range bs {
					if i < len(old.Buckets) && bs[i].Le == old.Buckets[i].Le {
						bs[i].Count -= old.Buckets[i].Count
					}
				}
				p.Buckets = bs
			}
		}
		out = append(out, p)
	}
	return out
}
