package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"dgmc/internal/core"
)

// Step is one protocol trace entry inside a span, JSON-ready.
type Step struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Switch int    `json:"switch"`
	Conn   int    `json:"conn"`
	Detail string `json:"detail"`
}

// Span is the reconstructed causal history of one local membership event:
// every event→compute→flood→recv→install/withdraw step, across every switch,
// that carried the event's chain ID. The counts are the paper's Table 2/3
// metrics observed live: how many topology computations and floods one
// event cost, and how long until its last installation (ConvergeNS).
type Span struct {
	// Chain renders the chain ID ("origin/seq").
	Chain string `json:"chain"`
	// Origin is the switch whose local event started the chain; Seq is that
	// switch's per-connection event index.
	Origin int `json:"origin"`
	Seq    int `json:"seq"`
	// Conn is the connection the event belongs to.
	Conn int `json:"conn"`

	// StartNS/EndNS bound the span on the trace timeline (virtual time for
	// the simulator, wall-clock Unix nanoseconds for the live runtime).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// ConvergeNS is the latency from the local event to its last observed
	// installation, 0 while no installation has been seen.
	ConvergeNS int64 `json:"converge_ns"`

	// Per-event protocol cost, network-wide.
	Computations int `json:"computations"`
	Floods       int `json:"floods"`
	Recvs        int `json:"recvs"`
	Installs     int `json:"installs"`
	Withdraws    int `json:"withdraws"`

	// Switches lists every switch that contributed a step, ascending.
	Switches []int `json:"switches"`

	// Steps is the full step list in arrival order.
	Steps []Step `json:"steps"`
}

// spanState is the mutable accumulator behind one Span.
type spanState struct {
	chain    core.ChainID
	conn     int
	steps    []Step
	switches map[int]struct{}

	haveStart     bool
	startNS       int64
	endNS         int64
	eventNS       int64 // timestamp of the TraceEvent step (start of the cause)
	haveEvent     bool
	lastInstallNS int64
	haveInstall   bool

	computations, floods, recvs, installs, withdraws int
}

// SpanCollector assembles core.TraceEntry streams into per-chain spans. It
// implements core.Tracer and is safe for concurrent use, so one collector
// can be attached to every node of a live cluster (or fed by several
// daemons' trace streams) and still reconstruct network-wide spans.
//
// Retention is bounded: once MaxSpans chains are tracked, the oldest chain
// (by first observation) is evicted to admit a new one. Entries with a zero
// chain ID (resync housekeeping, decode errors) are counted but not kept.
type SpanCollector struct {
	mu       sync.Mutex
	spans    map[core.ChainID]*spanState
	order    []core.ChainID // insertion order, for eviction
	maxSpans int
	dropped  uint64 // zero-chain entries not attributable to any span
	evicted  uint64
}

var _ core.Tracer = (*SpanCollector)(nil)

// NewSpanCollector returns a collector retaining up to maxSpans chains
// (default 1024 if maxSpans <= 0).
func NewSpanCollector(maxSpans int) *SpanCollector {
	if maxSpans <= 0 {
		maxSpans = 1024
	}
	return &SpanCollector{
		spans:    make(map[core.ChainID]*spanState),
		maxSpans: maxSpans,
	}
}

// Trace implements core.Tracer.
func (c *SpanCollector) Trace(e core.TraceEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Chain.IsZero() {
		c.dropped++
		return
	}
	st, ok := c.spans[e.Chain]
	if !ok {
		if len(c.order) >= c.maxSpans {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.spans, oldest)
			c.evicted++
		}
		st = &spanState{
			chain:    e.Chain,
			conn:     int(e.Conn),
			switches: make(map[int]struct{}),
		}
		c.spans[e.Chain] = st
		c.order = append(c.order, e.Chain)
	}
	at := int64(e.At)
	if !st.haveStart || at < st.startNS {
		st.startNS = at
		st.haveStart = true
	}
	if at > st.endNS {
		st.endNS = at
	}
	st.switches[int(e.Switch)] = struct{}{}
	switch e.Kind {
	case core.TraceEvent:
		// The chain's own event, by definition at its origin. Keep the
		// earliest in case of clock skew between processes.
		if !st.haveEvent || at < st.eventNS {
			st.eventNS = at
			st.haveEvent = true
		}
	case core.TraceCompute:
		st.computations++
	case core.TraceFlood:
		st.floods++
	case core.TraceRecv:
		st.recvs++
	case core.TraceInstall:
		st.installs++
		if at > st.lastInstallNS || !st.haveInstall {
			st.lastInstallNS = at
			st.haveInstall = true
		}
	case core.TraceWithdraw:
		st.withdraws++
	}
	st.steps = append(st.steps, Step{
		AtNS:   at,
		Kind:   e.Kind.String(),
		Switch: int(e.Switch),
		Conn:   int(e.Conn),
		Detail: e.Detail,
	})
}

func (st *spanState) snapshot() Span {
	sws := make([]int, 0, len(st.switches))
	for s := range st.switches {
		sws = append(sws, s)
	}
	sort.Ints(sws)
	sp := Span{
		Chain:        st.chain.String(),
		Origin:       int(st.chain.Origin),
		Seq:          int(st.chain.Seq),
		Conn:         st.conn,
		StartNS:      st.startNS,
		EndNS:        st.endNS,
		Computations: st.computations,
		Floods:       st.floods,
		Recvs:        st.recvs,
		Installs:     st.installs,
		Withdraws:    st.withdraws,
		Switches:     sws,
		Steps:        append([]Step(nil), st.steps...),
	}
	if st.haveInstall {
		base := st.startNS
		if st.haveEvent {
			base = st.eventNS
		}
		if d := st.lastInstallNS - base; d > 0 {
			sp.ConvergeNS = d
		}
	}
	return sp
}

// Spans returns the retained spans ordered by start time (ties by chain).
func (c *SpanCollector) Spans() []Span {
	c.mu.Lock()
	out := make([]Span, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.spans[id].snapshot())
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Chain < out[j].Chain
	})
	return out
}

// Span returns the span for one chain, if tracked.
func (c *SpanCollector) Span(chain core.ChainID) (Span, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.spans[chain]
	if !ok {
		return Span{}, false
	}
	return st.snapshot(), true
}

// SpanStats aggregates across the retained spans — the live counterpart of
// the paper's per-event averages.
type SpanStats struct {
	Spans     int `json:"spans"`
	Converged int `json:"converged"`
	Evicted   int `json:"evicted"`
	Unchained int `json:"unchained"`

	// Means are over all retained spans; convergence over converged ones.
	MeanComputations float64 `json:"mean_computations"`
	MeanFloods       float64 `json:"mean_floods"`
	MeanConvergeNS   float64 `json:"mean_converge_ns"`
	MaxConvergeNS    int64   `json:"max_converge_ns"`
}

// Stats computes the aggregate over the currently retained spans.
func (c *SpanCollector) Stats() SpanStats {
	spans := c.Spans()
	c.mu.Lock()
	st := SpanStats{
		Spans:     len(spans),
		Evicted:   int(c.evicted),
		Unchained: int(c.dropped),
	}
	c.mu.Unlock()
	var sumC, sumF float64
	var sumLat float64
	for _, sp := range spans {
		sumC += float64(sp.Computations)
		sumF += float64(sp.Floods)
		if sp.ConvergeNS > 0 {
			st.Converged++
			sumLat += float64(sp.ConvergeNS)
			if sp.ConvergeNS > st.MaxConvergeNS {
				st.MaxConvergeNS = sp.ConvergeNS
			}
		}
	}
	if len(spans) > 0 {
		st.MeanComputations = sumC / float64(len(spans))
		st.MeanFloods = sumF / float64(len(spans))
	}
	if st.Converged > 0 {
		st.MeanConvergeNS = sumLat / float64(st.Converged)
	}
	return st
}

// spansDoc is the JSON document WriteJSON emits (and /spans serves).
type spansDoc struct {
	Stats SpanStats `json:"stats"`
	Spans []Span    `json:"spans"`
}

// WriteJSON writes the retained spans plus aggregate stats as one indented
// JSON document.
func (c *SpanCollector) WriteJSON(w io.Writer) error {
	doc := spansDoc{Stats: c.Stats(), Spans: c.Spans()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
