package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"dgmc/internal/core"
	"dgmc/internal/sim"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dgmc_test_total").Add(9)
	spans := NewSpanCollector(0)
	spans.Trace(core.TraceEntry{
		At: sim.Time(5), Kind: core.TraceEvent, Switch: 1, Conn: 2,
		Chain: core.ChainID{Origin: 1, Seq: 1},
	})
	flight := NewFlightRecorder(16)
	flight.Record(RecFIBSwap, 0, 1, 1, 4)
	flight.Record(RecDropNoRoute, 3, 2, 41, 4)
	mux := NewAdminMux(AdminConfig{
		Registry: reg,
		Spans:    spans,
		State:    func() any { return map[string]int{"conns": 3} },
		Flight: func() *FlightDoc {
			return &FlightDoc{Switch: 1, Cap: flight.Cap(), Written: flight.Written(), Events: flight.Snapshot()}
		},
		Health: func() any { return map[string]bool{"converged": true} },
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "dgmc_test_total 9") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}
	code, body := get(t, srv, "/spans")
	if code != 200 {
		t.Fatalf("/spans = %d", code)
	}
	var doc struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Spans) != 1 {
		t.Fatalf("/spans body bad (%v):\n%s", err, body)
	}
	code, body = get(t, srv, "/state")
	if code != 200 || !strings.Contains(body, `"conns": 3`) {
		t.Fatalf("/state = %d\n%s", code, body)
	}
	code, body = get(t, srv, "/flightrec")
	if code != 200 {
		t.Fatalf("/flightrec = %d", code)
	}
	var fdoc FlightDoc
	if err := json.Unmarshal([]byte(body), &fdoc); err != nil {
		t.Fatalf("/flightrec body bad (%v):\n%s", err, body)
	}
	if fdoc.Switch != 1 || len(fdoc.Events) != 2 || fdoc.Events[1].Kind != RecDropNoRoute {
		t.Fatalf("/flightrec decoded wrong: %+v", fdoc)
	}
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, `"converged": true`) {
		t.Fatalf("/healthz = %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestAdminMuxDisabledEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(AdminConfig{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/spans", "/state", "/flightrec", "/healthz"} {
		if code, _ := get(t, srv, path); code != 404 {
			t.Errorf("%s = %d, want 404 when unconfigured", path, code)
		}
	}
}
