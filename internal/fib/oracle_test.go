package fib

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dgmc/internal/deliver"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

// This file is the FIB-vs-oracle cross-check: on randomized topologies and
// memberships, forwarding a packet hop by hop through per-switch compiled
// tables must reproduce deliver.Multicast exactly — same receiver set
// (exactly-once), same per-receiver latency, same Copies link-transmission
// count — for all three MC kinds. The distributed data plane and the
// centralized trace are two implementations of one delivery model; any
// divergence is a bug in one of them.

const oracleConn = lsa.ConnID(1)

// compileAll builds every switch's table for one connection state.
func compileAll(g *topo.Graph, kind mctree.Kind, members mctree.Members, tr *mctree.Tree) map[topo.SwitchID]*Table {
	tables := make(map[topo.SwitchID]*Table, g.NumSwitches())
	for _, s := range g.Switches() {
		b := NewBuilder(s, g)
		b.Add(oracleConn, kind, members, tr)
		tables[s] = b.Build()
	}
	return tables
}

// fibForward simulates distributed forwarding: each hop consults only the
// receiving switch's own table, exactly as rt.Node does live.
func fibForward(g *topo.Graph, tables map[topo.SwitchID]*Table, source topo.SwitchID) (map[topo.SwitchID]time.Duration, int, error) {
	e := tables[source].Lookup(oracleConn)
	if e == nil {
		return nil, 0, fmt.Errorf("no entry at source %d", source)
	}
	if !e.CanSend {
		return nil, 0, fmt.Errorf("source %d may not send", source)
	}
	type packet struct {
		at, from topo.SwitchID
		delay    time.Duration
		hops     int
	}
	maxHops := 2 * g.NumSwitches()
	latency := make(map[topo.SwitchID]time.Duration)
	copies := 0
	queue := []packet{{at: source, from: topo.NoSwitch, delay: 0}}
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		if p.hops > maxHops {
			return nil, 0, fmt.Errorf("packet exceeded %d hops (forwarding loop)", maxHops)
		}
		pe := tables[p.at].Lookup(oracleConn)
		if pe == nil {
			return nil, 0, fmt.Errorf("no entry at %d", p.at)
		}
		if pe.Local && p.at != source {
			if _, dup := latency[p.at]; dup {
				return nil, 0, fmt.Errorf("duplicate delivery at %d", p.at)
			}
			latency[p.at] = p.delay
		}
		send := func(to topo.SwitchID) error {
			l, ok := g.Link(p.at, to)
			if !ok || l.Down {
				return fmt.Errorf("hop (%d,%d) unusable", p.at, to)
			}
			copies++
			queue = append(queue, packet{at: to, from: p.at, delay: p.delay + l.Delay, hops: p.hops + 1})
			return nil
		}
		if pe.Entered() {
			for _, nb := range pe.Neighbors {
				if nb == p.from {
					continue
				}
				if err := send(nb); err != nil {
					return nil, 0, err
				}
			}
		} else if pe.ContactNext != topo.NoSwitch {
			if err := send(pe.ContactNext); err != nil {
				return nil, 0, err
			}
		} else if p.at == source {
			return nil, 0, fmt.Errorf("source %d has no route into the MC", source)
		}
	}
	return latency, copies, nil
}

// checkParity runs both implementations from source and requires identical
// outcomes.
func checkParity(t *testing.T, g *topo.Graph, kind mctree.Kind, members mctree.Members, tr *mctree.Tree,
	tables map[topo.SwitchID]*Table, source topo.SwitchID, label string) {
	t.Helper()
	rep, oerr := deliver.Multicast(g, tr, members, source)
	latency, copies, ferr := fibForward(g, tables, source)
	if (oerr == nil) != (ferr == nil) {
		t.Fatalf("%s src=%d: oracle err=%v, fib err=%v", label, source, oerr, ferr)
	}
	if oerr != nil {
		return
	}
	if copies != rep.Copies {
		t.Fatalf("%s src=%d: fib used %d copies, oracle %d", label, source, copies, rep.Copies)
	}
	if len(latency) != len(rep.Latency) {
		t.Fatalf("%s src=%d: fib reached %d receivers, oracle %d (%v vs %v)",
			label, source, len(latency), len(rep.Latency), latency, rep.Latency)
	}
	for m, d := range rep.Latency {
		if got, ok := latency[m]; !ok || got != d {
			t.Fatalf("%s src=%d: receiver %d latency fib=%v oracle=%v", label, source, m, latency[m], d)
		}
	}
}

func TestOracleParityRandomized(t *testing.T) {
	algos := map[mctree.Kind]route.Algorithm{
		mctree.Symmetric:    route.SPH{},
		mctree.ReceiverOnly: route.SPH{},
		mctree.Asymmetric:   route.SPT{},
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		n := 8 + rng.Intn(16)
		g, err := topo.Waxman(topo.DefaultGenConfig(n, seed))
		if err != nil {
			t.Fatalf("Waxman(n=%d, seed=%d): %v", n, seed, err)
		}
		for kind, algo := range algos {
			members := randomMembers(rng, n, kind)
			tr, err := algo.Compute(g, kind, members)
			if err != nil {
				t.Fatalf("seed=%d kind=%v: Compute: %v", seed, kind, err)
			}
			tables := compileAll(g, kind, members, tr)
			label := fmt.Sprintf("seed=%d kind=%v members=%v", seed, kind, members.IDs())
			// Every switch attempts to send: members exercise tree fan-out,
			// non-members exercise the contact stage (receiver-only) or the
			// not-a-sender rejection (symmetric/asymmetric).
			for _, src := range g.Switches() {
				checkParity(t, g, kind, members, tr, tables, src, label)
			}
		}
	}
}

// TestOracleParitySingleMember pins the edgeless-topology corner for all
// three kinds.
func TestOracleParitySingleMember(t *testing.T) {
	g, err := topo.Line(4, 10*time.Microsecond)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, kind := range []mctree.Kind{mctree.Symmetric, mctree.ReceiverOnly, mctree.Asymmetric} {
		role := mctree.SenderReceiver
		if kind == mctree.ReceiverOnly {
			role = mctree.Receiver
		}
		members := mctree.Members{2: role}
		tr := mctree.New(kind)
		if kind == mctree.Asymmetric {
			tr.Root = 2
		}
		tables := compileAll(g, kind, members, tr)
		for _, src := range g.Switches() {
			checkParity(t, g, kind, members, tr, tables, src, fmt.Sprintf("single-member kind=%v", kind))
		}
	}
}

func randomMembers(rng *rand.Rand, n int, kind mctree.Kind) mctree.Members {
	k := 2 + rng.Intn(4)
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	members := make(mctree.Members, k)
	switch kind {
	case mctree.Symmetric:
		for i := 0; i < k; i++ {
			members[topo.SwitchID(perm[i])] = mctree.SenderReceiver
		}
	case mctree.ReceiverOnly:
		for i := 0; i < k; i++ {
			members[topo.SwitchID(perm[i])] = mctree.Receiver
		}
	case mctree.Asymmetric:
		members[topo.SwitchID(perm[0])] = mctree.Sender
		for i := 1; i < k; i++ {
			members[topo.SwitchID(perm[i])] = mctree.Receiver
		}
	}
	return members
}
