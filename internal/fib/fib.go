// Package fib is the per-switch forwarding information base of the data
// plane: a compiled, read-only view of every installed MC topology that the
// live runtime's forward path consults on each payload frame. The control
// plane (core.Machine via the Host.ForwardingChanged hook) recompiles the
// table whenever a topology is installed, withdrawn, or the unicast image
// changes, and swaps it in atomically — forwarding never observes a
// half-updated tree.
//
// One entry per live connection, compiled from (kind, members, tree) plus
// the switch's link-state image:
//
//   - symmetric: on-tree switches fan out to their tree neighbors; members
//     may originate.
//   - receiver-only: every switch gets an entry. On-tree switches fan out;
//     off-tree switches hold a contact route — the next hop toward their
//     nearest receiving member (paper §1's contact node, resolved greedily
//     per switch so the packet enters the MC at the first on-tree switch
//     along the way). Anyone may originate.
//   - asymmetric: like symmetric, but only registered senders originate.
//
// internal/deliver implements the same semantics as a one-shot trace and
// serves as the oracle the FIB is tested against.
package fib

import (
	"sort"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// Entry is the forwarding state one switch holds for one connection. It is
// immutable after compilation.
type Entry struct {
	// Conn is the connection this entry serves.
	Conn lsa.ConnID
	// Kind is the MC type.
	Kind mctree.Kind
	// Member reports whether this switch is a member (of any role).
	Member bool
	// Local reports whether arriving payloads are delivered to the local
	// application (member with a receiving role).
	Local bool
	// CanSend reports whether the local application may originate on this
	// connection (per-kind rule; always true for receiver-only MCs).
	CanSend bool
	// Neighbors is the tree fan-out: the tree-adjacent switches, ascending.
	// Empty off-tree.
	Neighbors []topo.SwitchID
	// Contact is the nearest receiving member for an off-tree switch of a
	// receiver-only MC (topo.NoSwitch elsewhere). Kept for introspection;
	// forwarding uses ContactNext.
	Contact topo.SwitchID
	// ContactNext is the next hop toward Contact, or topo.NoSwitch.
	ContactNext topo.SwitchID
	// ContactDelay is the image delay from this switch to Contact.
	ContactDelay time.Duration
}

// Entered reports whether a packet at this switch has entered the MC: the
// switch is on the installed tree, or is the sole member of an edgeless MC.
func (e *Entry) Entered() bool { return len(e.Neighbors) > 0 || e.Member }

// Table is an immutable set of entries, one per live connection, swapped
// atomically by the runtime on every forwarding change.
type Table struct {
	entries map[lsa.ConnID]*Entry
}

// Lookup returns the entry for conn, or nil. It is nil-safe so a node that
// has not compiled yet can treat the missing table as empty.
func (t *Table) Lookup(conn lsa.ConnID) *Entry {
	if t == nil {
		return nil
	}
	return t.entries[conn]
}

// Size returns the number of entries (0 for a nil table).
func (t *Table) Size() int {
	if t == nil {
		return 0
	}
	return len(t.entries)
}

// Conns returns the connection IDs with entries, ascending.
func (t *Table) Conns() []lsa.ConnID {
	if t == nil {
		return nil
	}
	out := make([]lsa.ConnID, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Builder compiles a Table for one switch from per-connection control-plane
// state. It borrows a pooled SSSP scratch for the contact-route
// computations; Build releases it.
type Builder struct {
	self    topo.SwitchID
	g       *topo.Graph
	sc      *topo.SSSPScratch
	scRan   bool // the scratch holds this builder's SSSP run from self
	entries map[lsa.ConnID]*Entry
}

// NewBuilder starts a compilation for switch self over link-state image g
// (which is only read during Add calls, never retained by the Table).
func NewBuilder(self topo.SwitchID, g *topo.Graph) *Builder {
	return &Builder{self: self, g: g, entries: make(map[lsa.ConnID]*Entry)}
}

// Add compiles the entry for one connection. A nil tree is treated as
// edgeless (single-member or not-yet-installed state). members and t are
// only read during the call.
func (b *Builder) Add(conn lsa.ConnID, kind mctree.Kind, members mctree.Members, t *mctree.Tree) {
	role, isMember := members[b.self]
	e := &Entry{
		Conn:        conn,
		Kind:        kind,
		Member:      isMember,
		Local:       isMember && role.CanReceive(),
		Contact:     topo.NoSwitch,
		ContactNext: topo.NoSwitch,
	}
	switch kind {
	case mctree.ReceiverOnly:
		e.CanSend = true
	default:
		e.CanSend = isMember && role.CanSend()
	}
	if t != nil {
		e.Neighbors = t.Neighbors(b.self)
	}
	if kind == mctree.ReceiverOnly && !e.Entered() && len(members) > 0 {
		b.contactRoute(e, members)
	}
	b.entries[conn] = e
}

// contactRoute fills e.Contact/ContactNext/ContactDelay with the greedy
// next hop toward the nearest receiving member: minimum image delay,
// member-ID tie-break, lowest-ID predecessor chains — exactly the choice
// internal/deliver's trace makes at each hop, so multi-switch forwarding
// reproduces the oracle path.
func (b *Builder) contactRoute(e *Entry, members mctree.Members) {
	if !b.scRan {
		b.sc = topo.AcquireSSSP()
		b.sc.Reset(b.g.NumSwitches())
		b.sc.Seed(b.self)
		b.g.RunSSSP(b.sc, 0)
		b.scRan = true
	}
	best := topo.NoSwitch
	bestD := topo.Unreachable
	for _, m := range members.IDs() {
		if int(m) < 0 || int(m) >= len(b.sc.Dist) || !members[m].CanReceive() {
			continue
		}
		if d := b.sc.Dist[m]; d < bestD || (d == bestD && (best == topo.NoSwitch || m < best)) {
			best, bestD = m, d
		}
	}
	if best == topo.NoSwitch || bestD == topo.Unreachable {
		return // no reachable member: frames drop with reason no-route
	}
	// Walk the predecessor chain from the contact back to self; the switch
	// whose predecessor is self is our next hop.
	next := best
	for b.sc.Pred[next] != b.self {
		next = b.sc.Pred[next]
		if next == topo.NoSwitch {
			return // self is the contact or the chain is broken
		}
	}
	e.Contact = best
	e.ContactNext = next
	e.ContactDelay = bestD
}

// Build finalizes and returns the table, releasing the builder's scratch.
// The builder must not be reused afterwards.
func (b *Builder) Build() *Table {
	if b.sc != nil {
		topo.ReleaseSSSP(b.sc)
		b.sc = nil
	}
	return &Table{entries: b.entries}
}
