package fib

import (
	"testing"
	"time"

	"dgmc/internal/mctree"
	"dgmc/internal/topo"
)

// line builds a 6-switch line 0-1-2-3-4-5 with 10µs links.
func line(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Line(6, 10*time.Microsecond)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	return g
}

// lineTree is the tree 0-1-2 over the line graph.
func lineTree(kind mctree.Kind) *mctree.Tree {
	tr := mctree.New(kind)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	return tr
}

func compile(g *topo.Graph, self topo.SwitchID, kind mctree.Kind, members mctree.Members, tr *mctree.Tree) *Entry {
	b := NewBuilder(self, g)
	b.Add(1, kind, members, tr)
	return b.Build().Lookup(1)
}

func TestNilTable(t *testing.T) {
	var tbl *Table
	if tbl.Lookup(1) != nil {
		t.Fatal("nil table returned an entry")
	}
	if tbl.Size() != 0 {
		t.Fatal("nil table has nonzero size")
	}
	if tbl.Conns() != nil {
		t.Fatal("nil table has conns")
	}
}

func TestSymmetricEntries(t *testing.T) {
	g := line(t)
	members := mctree.Members{0: mctree.SenderReceiver, 2: mctree.SenderReceiver}
	tr := lineTree(mctree.Symmetric)

	e := compile(g, 1, mctree.Symmetric, members, tr)
	if e == nil {
		t.Fatal("no entry at relay switch 1")
	}
	if e.Local || e.CanSend || !e.Entered() {
		t.Fatalf("relay entry wrong: %+v", e)
	}
	if len(e.Neighbors) != 2 || e.Neighbors[0] != 0 || e.Neighbors[1] != 2 {
		t.Fatalf("relay neighbors = %v, want [0 2]", e.Neighbors)
	}

	e = compile(g, 0, mctree.Symmetric, members, tr)
	if !e.Local || !e.CanSend || !e.Member {
		t.Fatalf("member entry wrong: %+v", e)
	}

	e = compile(g, 4, mctree.Symmetric, members, tr)
	if e.Entered() || e.CanSend || e.ContactNext != topo.NoSwitch {
		t.Fatalf("off-tree symmetric entry wrong: %+v", e)
	}
}

func TestReceiverOnlyContactRoute(t *testing.T) {
	g := line(t)
	members := mctree.Members{0: mctree.Receiver, 2: mctree.Receiver}
	tr := lineTree(mctree.ReceiverOnly)

	// Switch 5 is off-tree: its contact is the nearest receiver (2, 30µs
	// away) and the next hop toward it is 4.
	e := compile(g, 5, mctree.ReceiverOnly, members, tr)
	if e == nil || e.Entered() {
		t.Fatalf("off-tree entry wrong: %+v", e)
	}
	if !e.CanSend {
		t.Fatal("receiver-only MCs accept any sender")
	}
	if e.Contact != 2 || e.ContactNext != 4 || e.ContactDelay != 30*time.Microsecond {
		t.Fatalf("contact route = (%d via %d, %v), want (2 via 4, 30µs)", e.Contact, e.ContactNext, e.ContactDelay)
	}

	// On-tree switches carry fan-out, no contact route.
	e = compile(g, 1, mctree.ReceiverOnly, members, tr)
	if !e.Entered() || e.ContactNext != topo.NoSwitch {
		t.Fatalf("on-tree entry wrong: %+v", e)
	}
}

func TestAsymmetricSendRule(t *testing.T) {
	g := line(t)
	members := mctree.Members{0: mctree.Sender, 2: mctree.Receiver}
	tr := lineTree(mctree.Asymmetric)

	if e := compile(g, 0, mctree.Asymmetric, members, tr); !e.CanSend || e.Local {
		t.Fatalf("sender entry wrong: %+v", e)
	}
	if e := compile(g, 2, mctree.Asymmetric, members, tr); e.CanSend || !e.Local {
		t.Fatalf("receiver entry wrong: %+v", e)
	}
	if e := compile(g, 1, mctree.Asymmetric, members, tr); e.CanSend {
		t.Fatalf("relay may not send: %+v", e)
	}
}

func TestSingleMemberEntry(t *testing.T) {
	g := line(t)
	members := mctree.Members{3: mctree.SenderReceiver}
	e := compile(g, 3, mctree.Symmetric, members, nil)
	if !e.Entered() || !e.Local || !e.CanSend || len(e.Neighbors) != 0 {
		t.Fatalf("single-member entry wrong: %+v", e)
	}
	// Other switches see a receiver-only singleton as a contact target.
	e = compile(g, 5, mctree.ReceiverOnly, mctree.Members{3: mctree.Receiver}, nil)
	if e.Contact != 3 || e.ContactNext != 4 {
		t.Fatalf("contact to singleton = %d via %d, want 3 via 4", e.Contact, e.ContactNext)
	}
}

func TestUnreachableContact(t *testing.T) {
	g := line(t)
	if err := g.SetLinkDown(3, 4, true); err != nil {
		t.Fatalf("SetLinkDown: %v", err)
	}
	members := mctree.Members{0: mctree.Receiver, 2: mctree.Receiver}
	e := compile(g, 5, mctree.ReceiverOnly, members, lineTree(mctree.ReceiverOnly))
	if e.Contact != topo.NoSwitch || e.ContactNext != topo.NoSwitch {
		t.Fatalf("expected no contact route across a cut, got %+v", e)
	}
}

func TestTableConns(t *testing.T) {
	g := line(t)
	b := NewBuilder(0, g)
	b.Add(9, mctree.Symmetric, mctree.Members{0: mctree.SenderReceiver}, nil)
	b.Add(2, mctree.ReceiverOnly, mctree.Members{1: mctree.Receiver, 3: mctree.Receiver}, lineTree(mctree.ReceiverOnly))
	tbl := b.Build()
	conns := tbl.Conns()
	if tbl.Size() != 2 || len(conns) != 2 || conns[0] != 2 || conns[1] != 9 {
		t.Fatalf("conns = %v (size %d), want [2 9]", conns, tbl.Size())
	}
}
