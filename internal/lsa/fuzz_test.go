package lsa

import (
	"bytes"
	"testing"

	"dgmc/internal/mctree"
	"dgmc/internal/stamp"
)

// FuzzDecodeLSA feeds arbitrary bytes to the wire decoder. The decoder must
// never panic, and any buffer it accepts must round-trip: re-encoding the
// decoded advertisement and decoding it again must succeed and reach an
// encoding fixpoint (the second encode is byte-identical to the first).
func FuzzDecodeLSA(f *testing.F) {
	tree := mctree.New(mctree.Symmetric)
	tree.AddEdge(0, 1)
	tree.AddEdge(1, 2)
	mc := &MC{Src: 1, Event: Join, Role: mctree.SenderReceiver, Conn: 3,
		Proposal: tree, Stamp: stamp.Stamp{1, 0, 2}}
	bare := &MC{Src: 2, Event: Leave, Conn: 1, Stamp: stamp.Stamp{0, 1, 1, 0}}
	nm := &NonMC{Src: 0, Seq: 9, Change: LinkChange{A: 0, B: 2, Down: true}}
	f.Add(mc.Marshal())
	f.Add(bare.Marshal())
	f.Add(nm.Marshal())
	f.Add([]byte{})
	f.Add([]byte{tagMC})
	f.Add([]byte{tagNonMC, 1, 2, 3})
	f.Add([]byte{77, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics and false accepts are not
		}
		if (m == nil) == (n == nil) {
			t.Fatalf("accepted buffer decoded to m=%v n=%v; exactly one must be non-nil", m, n)
		}
		var first []byte
		if m != nil {
			first = m.Marshal()
		} else {
			first = n.Marshal()
		}
		m2, n2, err := Unmarshal(first)
		if err != nil {
			t.Fatalf("re-decode of accepted LSA failed: %v (input %x)", err, data)
		}
		var second []byte
		if m2 != nil {
			second = m2.Marshal()
		} else {
			second = n2.Marshal()
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encode not a fixpoint:\n first=%x\nsecond=%x", first, second)
		}
	})
}
