// Package lsa defines the link-state advertisements exchanged by the D-GMC
// protocol and the underlying unicast LSR protocol, mirroring §3.1 of the
// paper.
//
// Two advertisement types are distinguished by the flag F:
//
//   - an MC LSA is the tuple (S, F=mc, V, G, P, T): source switch S, event
//     V (join, leave, link, or none for triggered LSAs), connection ID G,
//     optional topology proposal P, and vector timestamp T;
//   - a non-MC LSA is the tuple (S, F=¬mc, D): source switch S and a
//     link/nodal event description D, processed by the unicast protocol.
package lsa

import (
	"encoding/binary"
	"fmt"

	"dgmc/internal/mctree"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// ConnID identifies a multipoint connection (the paper's G).
type ConnID uint32

// AllConns is the wildcard connection ID used by a restarted switch's
// full-resync request: "replay every connection you know about". It is
// never a real connection — deployments derive connection IDs from group
// addresses, which cannot be all-ones — and it only ever appears in the
// Conn field of a ResyncRequest, whose codec passes any uint32 through.
const AllConns ConnID = ^ConnID(0)

// Event is the V field of an MC LSA.
type Event uint8

const (
	// None marks a triggered LSA: it may carry a proposal but no event.
	None Event = iota
	// Join announces that the source switch joined the connection.
	Join
	// Leave announces that the source switch left the connection.
	Leave
	// Link announces that a link/nodal event affected the connection's
	// topology (the companion non-MC LSA carries the details).
	Link
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case None:
		return "none"
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Link:
		return "link"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// Valid reports whether e is a defined event kind.
func (e Event) Valid() bool { return e <= Link }

// IsEvent reports whether the LSA advertises an event (V ≠ none). Only
// event LSAs advance received timestamps.
func (e Event) IsEvent() bool { return e != None }

// MC is an MC LSA (S, F=mc, V, G, P, T).
type MC struct {
	// Src is S, the originating switch.
	Src topo.SwitchID
	// Event is V.
	Event Event
	// Conn is G, the connection this LSA concerns.
	Conn ConnID
	// Role qualifies Join events with the member's role (an extension the
	// paper folds into its membership description).
	Role mctree.Role
	// Proposal is P, a complete topology proposal, or nil.
	Proposal *mctree.Tree
	// Stamp is T.
	Stamp stamp.Stamp
}

// String implements fmt.Stringer.
func (m *MC) String() string {
	p := "∅"
	if m.Proposal != nil {
		p = m.Proposal.String()
	}
	return fmt.Sprintf("MC-LSA{S=%d V=%s G=%d P=%s T=%s}", m.Src, m.Event, m.Conn, p, m.Stamp)
}

// Validate checks structural well-formedness.
func (m *MC) Validate(n int) error {
	if m.Src < 0 || int(m.Src) >= n {
		return fmt.Errorf("lsa: MC LSA source %d out of range [0,%d)", m.Src, n)
	}
	if !m.Event.Valid() {
		return fmt.Errorf("lsa: invalid event %d", m.Event)
	}
	if len(m.Stamp) != n {
		return fmt.Errorf("lsa: stamp has %d components, network has %d switches", len(m.Stamp), n)
	}
	if m.Event == Join && m.Role == 0 {
		return fmt.Errorf("lsa: join LSA without role")
	}
	return nil
}

// LinkChange is the D field of a non-MC LSA describing a link status event.
type LinkChange struct {
	A, B topo.SwitchID
	Down bool
}

// String implements fmt.Stringer.
func (lc LinkChange) String() string {
	state := "up"
	if lc.Down {
		state = "down"
	}
	return fmt.Sprintf("link(%d,%d) %s", lc.A, lc.B, state)
}

// NonMC is a non-MC LSA (S, F=¬mc, D), handled by the unicast LSR protocol.
type NonMC struct {
	// Src is S, the switch that detected the event.
	Src topo.SwitchID
	// Seq is the originator's advertisement sequence number, as in OSPF:
	// receivers discard advertisements older than the newest they have
	// seen from the same originator, making the substrate robust to
	// duplicated or reordered delivery. Zero means unsequenced (always
	// processed).
	Seq uint32
	// Change is D.
	Change LinkChange
}

// String implements fmt.Stringer.
func (nm *NonMC) String() string {
	return fmt.Sprintf("LSA{S=%d D=%s}", nm.Src, nm.Change)
}

// Wire type tags for encoding.
const (
	tagMC    byte = 1
	tagNonMC byte = 2
)

// Marshal encodes an MC LSA.
func (m *MC) Marshal() []byte {
	return m.AppendMarshal(make([]byte, 0, 16+4*len(m.Stamp)+8*8))
}

// AppendMarshal appends the LSA's encoding to dst and returns the extended
// slice — the allocation-free form of Marshal for callers reusing buffers.
func (m *MC) AppendMarshal(dst []byte) []byte {
	dst = append(dst, tagMC)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Src)))
	dst = append(dst, byte(m.Event), byte(m.Role))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Conn))
	dst = m.Proposal.AppendBinary(dst)
	dst = m.Stamp.AppendBinary(dst)
	return dst
}

// Marshal encodes a non-MC LSA.
func (nm *NonMC) Marshal() []byte {
	return nm.AppendMarshal(make([]byte, 0, 18))
}

// AppendMarshal appends the LSA's encoding to dst and returns the extended
// slice.
func (nm *NonMC) AppendMarshal(dst []byte) []byte {
	dst = append(dst, tagNonMC)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(nm.Src)))
	dst = binary.BigEndian.AppendUint32(dst, nm.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(nm.Change.A)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(nm.Change.B)))
	if nm.Change.Down {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// Unmarshal decodes an advertisement produced by either Marshal. Exactly
// one of the returns is non-nil on success.
func Unmarshal(buf []byte) (*MC, *NonMC, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("lsa: empty buffer")
	}
	switch buf[0] {
	case tagMC:
		buf = buf[1:]
		if len(buf) < 10 {
			return nil, nil, fmt.Errorf("lsa: truncated MC LSA")
		}
		m := &MC{
			Src:   topo.SwitchID(int32(binary.BigEndian.Uint32(buf))),
			Event: Event(buf[4]),
			Role:  mctree.Role(buf[5]),
			Conn:  ConnID(binary.BigEndian.Uint32(buf[6:])),
		}
		if !m.Event.Valid() {
			return nil, nil, fmt.Errorf("lsa: invalid event byte %d", buf[4])
		}
		rest := buf[10:]
		var err error
		m.Proposal, rest, err = mctree.DecodeBinary(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("lsa: proposal: %w", err)
		}
		m.Stamp, rest, err = stamp.DecodeBinary(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("lsa: stamp: %w", err)
		}
		if len(rest) != 0 {
			return nil, nil, fmt.Errorf("lsa: %d trailing bytes", len(rest))
		}
		return m, nil, nil
	case tagNonMC:
		buf = buf[1:]
		if len(buf) != 17 {
			return nil, nil, fmt.Errorf("lsa: non-MC LSA length %d, want 17", len(buf))
		}
		nm := &NonMC{
			Src: topo.SwitchID(int32(binary.BigEndian.Uint32(buf))),
			Seq: binary.BigEndian.Uint32(buf[4:]),
			Change: LinkChange{
				A:    topo.SwitchID(int32(binary.BigEndian.Uint32(buf[8:]))),
				B:    topo.SwitchID(int32(binary.BigEndian.Uint32(buf[12:]))),
				Down: buf[16] != 0,
			},
		}
		return nil, nm, nil
	default:
		return nil, nil, fmt.Errorf("lsa: unknown tag %d", buf[0])
	}
}
