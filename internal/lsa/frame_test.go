package lsa

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dgmc/internal/mctree"
	"dgmc/internal/stamp"
)

func testFrame() *Frame {
	tree := mctree.New(mctree.Symmetric)
	tree.AddEdge(0, 1)
	mc := &MC{Src: 1, Event: Join, Role: mctree.SenderReceiver, Conn: 3,
		Proposal: tree, Stamp: stamp.Stamp{1, 0, 2}}
	return &Frame{Version: FrameVersion, Kind: FrameFlood, Origin: 1, From: 1, Seq: 42, Payload: mc.Marshal()}
}

func TestFrameRoundTrip(t *testing.T) {
	f := testFrame()
	enc := EncodeFrame(f)
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Version != f.Version || got.Kind != f.Kind || got.Origin != f.Origin ||
		got.From != f.From || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, f)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	enc := EncodeFrame(testFrame())
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeFrame(enc[:cut]); err == nil {
			t.Fatalf("accepted frame truncated to %d of %d bytes", cut, len(enc))
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	enc := EncodeFrame(testFrame())
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("accepted frame with byte %d corrupted", i)
		}
	}
}

func TestFrameRejectsVersionSkew(t *testing.T) {
	f := testFrame()
	f.Version = FrameVersion + 1
	if _, err := DecodeFrame(EncodeFrame(f)); err == nil {
		t.Fatal("accepted frame with future version")
	}
}

func TestFrameRejectsUnknownKind(t *testing.T) {
	f := testFrame()
	f.Kind = FrameKind(200)
	if _, err := DecodeFrame(EncodeFrame(f)); err == nil {
		t.Fatal("accepted frame with unknown kind")
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	enc := EncodeFrame(testFrame())
	binary.BigEndian.PutUint32(enc[18:], MaxFramePayload+1)
	if _, err := DecodeFrame(enc); err == nil {
		t.Fatal("accepted frame with oversized length field")
	}
}

func TestPatchFrameFrom(t *testing.T) {
	enc := EncodeFrame(testFrame())
	if err := PatchFrameFrom(enc, 7); err != nil {
		t.Fatalf("PatchFrameFrom: %v", err)
	}
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("decode after patch: %v", err)
	}
	if got.From != 7 {
		t.Fatalf("patched From = %d, want 7", got.From)
	}
	if got.Origin != 1 || got.Seq != 42 {
		t.Fatalf("patch disturbed other fields: %+v", got)
	}
	if err := PatchFrameFrom(enc[:10], 3); err == nil {
		t.Fatal("patched a truncated frame")
	}
}

func TestResyncRequestRoundTrip(t *testing.T) {
	r := &ResyncRequest{Conn: 9, From: 4, R: stamp.Stamp{3, 0, 1, 2}}
	got, err := DecodeResyncRequest(r.Marshal())
	if err != nil {
		t.Fatalf("DecodeResyncRequest: %v", err)
	}
	if got.Conn != r.Conn || got.From != r.From || !got.R.Equal(r.R) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, r)
	}
	if _, err := DecodeResyncRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted truncated resync request")
	}
}

func TestResyncResponseRoundTrip(t *testing.T) {
	tree := mctree.New(mctree.Symmetric)
	tree.AddEdge(1, 2)
	r := &ResyncResponse{Conn: 9, From: 4, Batch: []*MC{
		{Src: 1, Event: Join, Role: mctree.Receiver, Conn: 9, Stamp: stamp.Stamp{1, 0, 0}},
		{Src: 2, Event: None, Conn: 9, Proposal: tree, Stamp: stamp.Stamp{1, 1, 0}},
	}}
	got, err := DecodeResyncResponse(r.Marshal())
	if err != nil {
		t.Fatalf("DecodeResyncResponse: %v", err)
	}
	if got.Conn != r.Conn || got.From != r.From || len(got.Batch) != 2 {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if got.Batch[0].Src != 1 || got.Batch[1].Proposal == nil {
		t.Fatalf("batch content mismatch: %v / %v", got.Batch[0], got.Batch[1])
	}
	if _, err := DecodeResyncResponse([]byte{0, 0, 0, 1}); err == nil {
		t.Fatal("accepted truncated resync response")
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder. Truncation,
// bad checksums, and version skew must come back as errors — never panics —
// and any accepted frame must re-encode byte-identically.
func FuzzDecodeFrame(f *testing.F) {
	fr := testFrame()
	f.Add(EncodeFrame(fr))
	req := &ResyncRequest{Conn: 1, From: 0, R: stamp.Stamp{1, 2}}
	f.Add(EncodeFrame(&Frame{Version: FrameVersion, Kind: FrameResyncReq, Origin: 0, From: 0, Seq: 1, Payload: req.Marshal()}))
	f.Add(EncodeFrame(&Frame{Version: FrameVersion, Kind: FrameFlood, Origin: 2, From: 3, Seq: 7}))
	f.Add([]byte{})
	f.Add([]byte{FrameVersion})
	f.Add([]byte{FrameVersion + 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // rejection is fine; panics and false accepts are not
		}
		if fr.Version != FrameVersion {
			t.Fatalf("accepted frame with version %d", fr.Version)
		}
		if !fr.Kind.Valid() {
			t.Fatalf("accepted frame with invalid kind %d", fr.Kind)
		}
		re := EncodeFrame(fr)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame does not re-encode identically:\n in=%x\nout=%x", data, re)
		}
	})
}

// FuzzDecodeResyncResponse guards the batch decoder against hostile counts
// and truncated inner LSAs.
func FuzzDecodeResyncResponse(f *testing.F) {
	r := &ResyncResponse{Conn: 9, From: 4, Batch: []*MC{
		{Src: 1, Event: Join, Role: mctree.Receiver, Conn: 9, Stamp: stamp.Stamp{1, 0}},
	}}
	f.Add(r.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 4, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeResyncResponse(data)
		if err != nil {
			return
		}
		re := got.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted response does not re-encode identically:\n in=%x\nout=%x", data, re)
		}
	})
}
