package lsa

import (
	"encoding/binary"
	"fmt"

	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

// Resync messages are the gap-recovery exchange of the D-GMC protocol (the
// OSPF database-description analogue, see internal/core's resync logic):
// a switch whose received stamp R trails its expected stamp E asks a
// neighbor to replay the per-origin event suffixes beyond R. They travel
// point-to-point between neighbors, never flooded.

// ResyncRequest asks a neighbor to replay the event LSAs the requester is
// missing. R is the requester's received stamp; the peer replays exactly
// the per-origin suffixes beyond it.
type ResyncRequest struct {
	Conn ConnID
	From topo.SwitchID
	R    stamp.Stamp
}

// ResyncResponse carries the replayed LSAs (in the peer's application
// order, ending with a pseudo-proposal when the peer has an installed
// topology). The batch is consumed by the ordinary ReceiveLSA path.
type ResyncResponse struct {
	Conn  ConnID
	From  topo.SwitchID
	Batch []*MC
}

// Marshal encodes a resync request.
func (r *ResyncRequest) Marshal() []byte {
	return r.AppendMarshal(make([]byte, 0, 12+4+4*len(r.R)))
}

// AppendMarshal appends the request's encoding to dst and returns the
// extended slice.
func (r *ResyncRequest) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Conn))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.From)))
	dst = r.R.AppendBinary(dst)
	return dst
}

// DecodeResyncRequest decodes a buffer produced by ResyncRequest.Marshal.
func DecodeResyncRequest(buf []byte) (*ResyncRequest, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("lsa: truncated resync request (%d bytes)", len(buf))
	}
	r := &ResyncRequest{
		Conn: ConnID(binary.BigEndian.Uint32(buf)),
		From: topo.SwitchID(int32(binary.BigEndian.Uint32(buf[4:]))),
	}
	var rest []byte
	var err error
	r.R, rest, err = stamp.DecodeBinary(buf[8:])
	if err != nil {
		return nil, fmt.Errorf("lsa: resync request stamp: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lsa: resync request: %d trailing bytes", len(rest))
	}
	return r, nil
}

// Marshal encodes a resync response. Each batched LSA is length-prefixed
// so the batch can be decoded without trusting inner lengths.
func (r *ResyncResponse) Marshal() []byte {
	return r.AppendMarshal(make([]byte, 0, 16))
}

// AppendMarshal appends the response's encoding to dst and returns the
// extended slice.
func (r *ResyncResponse) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Conn))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Batch)))
	for _, m := range r.Batch {
		lenAt := len(dst)
		dst = binary.BigEndian.AppendUint32(dst, 0)
		dst = m.AppendMarshal(dst)
		binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst
}

// DecodeResyncResponse decodes a buffer produced by ResyncResponse.Marshal.
func DecodeResyncResponse(buf []byte) (*ResyncResponse, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("lsa: truncated resync response (%d bytes)", len(buf))
	}
	r := &ResyncResponse{
		Conn: ConnID(binary.BigEndian.Uint32(buf)),
		From: topo.SwitchID(int32(binary.BigEndian.Uint32(buf[4:]))),
	}
	count := binary.BigEndian.Uint32(buf[8:])
	buf = buf[12:]
	if count > uint32(len(buf)) {
		// Each LSA needs at least one byte; an impossible count is a
		// malformed (or hostile) message, not an allocation request.
		return nil, fmt.Errorf("lsa: resync response claims %d LSAs in %d bytes", count, len(buf))
	}
	r.Batch = make([]*MC, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("lsa: resync response: truncated LSA %d length", i)
		}
		l := binary.BigEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < l {
			return nil, fmt.Errorf("lsa: resync response: LSA %d needs %d bytes, have %d", i, l, len(buf))
		}
		mc, nm, err := Unmarshal(buf[:l])
		if err != nil {
			return nil, fmt.Errorf("lsa: resync response LSA %d: %w", i, err)
		}
		if mc == nil || nm != nil {
			return nil, fmt.Errorf("lsa: resync response LSA %d is not an MC LSA", i)
		}
		r.Batch = append(r.Batch, mc)
		buf = buf[l:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("lsa: resync response: %d trailing bytes", len(buf))
	}
	return r, nil
}
