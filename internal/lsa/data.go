package lsa

import (
	"encoding/binary"
	"fmt"

	"dgmc/internal/topo"
)

// Data-plane framing. A FrameData frame reuses the common 26-byte wire
// header (Origin = source switch, Seq = the source's data sequence, From =
// link-level forwarder) and prefixes the application payload with a small
// data header:
//
//	conn (4, big-endian) | hops (1) | application payload
//
// The hop budget is decremented at every forwarding hop and the frame is
// dropped when it reaches zero — the only loop guard the data plane has
// while trees at different switches transiently disagree during
// reconvergence. Forwarders relay the received buffer in place via
// PatchDataForward (From + hops + CRC rewrite), never re-encoding.

// dataHeaderLen is conn(4) + hops(1).
const dataHeaderLen = 5

// MaxDataHops is the largest encodable hop budget.
const MaxDataHops = 255

// DataFrame is the decoded view of a FrameData frame's identity and
// data-plane header. Src and Seq mirror the outer frame's Origin and Seq;
// Payload aliases the decoded buffer.
type DataFrame struct {
	Conn    ConnID
	Src     topo.SwitchID
	Seq     uint64
	Hops    uint8
	Payload []byte
}

// AppendDataFrame appends a complete wire frame (outer header + data header
// + payload) for d to dst and returns the extended slice. from is the
// link-level sender stamped into the outer header.
func AppendDataFrame(dst []byte, d *DataFrame, from topo.SwitchID) []byte {
	f := Frame{Version: FrameVersion, Kind: FrameData, Origin: d.Src, From: from, Seq: d.Seq}
	return AppendFrameWith(dst, &f, func(b []byte) []byte {
		b = binary.BigEndian.AppendUint32(b, uint32(d.Conn))
		b = append(b, d.Hops)
		return append(b, d.Payload...)
	})
}

// DecodeDataInto parses the data-plane header out of an already-decoded
// FrameData frame into d. It errors on non-data frames and truncated data
// headers; it never panics on hostile input (see FuzzDecodeDataFrame).
// d.Payload aliases f.Payload.
func DecodeDataInto(d *DataFrame, f *Frame) error {
	if f.Kind != FrameData {
		return fmt.Errorf("lsa: frame kind %v is not a data frame", f.Kind)
	}
	if len(f.Payload) < dataHeaderLen {
		return fmt.Errorf("lsa: truncated data header (%d bytes, need %d)", len(f.Payload), dataHeaderLen)
	}
	d.Conn = ConnID(binary.BigEndian.Uint32(f.Payload))
	d.Hops = f.Payload[4]
	d.Src = f.Origin
	d.Seq = f.Seq
	d.Payload = f.Payload[dataHeaderLen:]
	return nil
}

// PatchDataSeq rewrites the outer sequence number of an encoded data frame
// in place and fixes the CRC. The batch-origination path encodes one frame
// and restamps the sequence per packet, so a burst pays the header+payload
// encode once instead of per copy.
func PatchDataSeq(buf []byte, seq uint64) error {
	if len(buf) < frameHeaderLen+dataHeaderLen {
		return fmt.Errorf("lsa: data frame too short to patch (%d bytes)", len(buf))
	}
	binary.BigEndian.PutUint64(buf[frameSeqOffset:], seq)
	binary.BigEndian.PutUint32(buf[frameHeaderLen-4:],
		frameCRC(buf[:frameHeaderLen-4], buf[frameHeaderLen:]))
	return nil
}

// PatchDataForward rewrites the link-level From field and the hop budget of
// an encoded data frame in place and fixes the CRC in a single pass, so a
// forwarder can relay the buffer it received without re-encoding.
func PatchDataForward(buf []byte, from topo.SwitchID, hops uint8) error {
	if len(buf) < frameHeaderLen+dataHeaderLen {
		return fmt.Errorf("lsa: data frame too short to patch (%d bytes)", len(buf))
	}
	binary.BigEndian.PutUint32(buf[frameFromOffset:], uint32(int32(from)))
	buf[frameHeaderLen+4] = hops
	binary.BigEndian.PutUint32(buf[frameHeaderLen-4:],
		frameCRC(buf[:frameHeaderLen-4], buf[frameHeaderLen:]))
	return nil
}
