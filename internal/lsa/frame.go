package lsa

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dgmc/internal/topo"
)

// FrameVersion is the current wire-framing version. Receivers reject other
// versions: the framing carries no negotiation, so a version skew between
// daemons is a deployment error to surface, not to paper over.
const FrameVersion = 1

// FrameKind says what a frame's payload is and how it travels.
type FrameKind uint8

const (
	// FrameFlood carries a Marshal'd MC or non-MC LSA being flooded
	// network-wide: receivers deliver it locally and re-forward it to
	// their other neighbors, suppressing duplicates by (Origin, Seq).
	FrameFlood FrameKind = 1
	// FrameResyncReq carries a point-to-point ResyncRequest.
	FrameResyncReq FrameKind = 2
	// FrameResyncResp carries a point-to-point ResyncResponse.
	FrameResyncResp FrameKind = 3
	// FrameData carries an application payload riding an installed MC
	// topology: it is forwarded hop by hop along the per-switch FIB, not
	// flooded. Origin is the sending switch, Seq its per-source data
	// sequence, From the link-level forwarder (patched at each hop).
	FrameData FrameKind = 4
)

// Valid reports whether k is a defined frame kind.
func (k FrameKind) Valid() bool {
	return k == FrameFlood || k == FrameResyncReq || k == FrameResyncResp || k == FrameData
}

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case FrameFlood:
		return "flood"
	case FrameResyncReq:
		return "resync-req"
	case FrameResyncResp:
		return "resync-resp"
	case FrameData:
		return "data"
	default:
		return fmt.Sprintf("FrameKind(%d)", uint8(k))
	}
}

// Frame is the unit a live transport sends on the wire: a small header
// (version, kind, flood identity, link-level sender, payload length, CRC)
// around one encoded advertisement or resync message.
//
// Origin and Seq identify a flood network-wide for duplicate suppression;
// From is the link-level sender, updated at each store-and-forward hop so
// receivers know which neighbor not to forward back to. For point-to-point
// resync frames Origin == From and Seq is the sender's next flood sequence
// (unused by receivers beyond tracing).
type Frame struct {
	Version uint8
	Kind    FrameKind
	Origin  topo.SwitchID
	From    topo.SwitchID
	Seq     uint64
	Payload []byte
}

// frameHeaderLen is version(1) + kind(1) + origin(4) + from(4) + seq(8) +
// length(4) + crc32(4).
const frameHeaderLen = 26

// frameFromOffset is the byte offset of the From field, exported to the
// forwarding path via PatchFrameFrom.
const frameFromOffset = 6

// frameSeqOffset is the byte offset of the Seq field, used by the in-place
// patch helpers (PatchDataSeq) and the header peek.
const frameSeqOffset = 10

// MaxFramePayload bounds the payload length a decoder will accept. It is
// far above anything the protocol produces (a proposal tree plus a stamp
// for a few hundred switches is a few KB) while keeping a hostile length
// field from turning into a large allocation.
const MaxFramePayload = 1 << 20

// EncodeFrame encodes f. The CRC covers the header fields and the payload,
// so any truncation or corruption of either is detected.
func EncodeFrame(f *Frame) []byte {
	return AppendFrame(make([]byte, 0, frameHeaderLen+len(f.Payload)), f)
}

// AppendFrame appends f's encoding to dst and returns the extended slice —
// the allocation-free form of EncodeFrame for callers that reuse buffers.
func AppendFrame(dst []byte, f *Frame) []byte {
	return AppendFrameWith(dst, f, func(b []byte) []byte {
		return append(b, f.Payload...)
	})
}

// AppendFrameWith appends a frame to dst whose payload is produced by
// payloadFn appending directly after the header, skipping the intermediate
// payload slice entirely. f.Payload is ignored; the length and CRC fields are
// patched after payloadFn returns, so the output is byte-identical to
// EncodeFrame over the same payload bytes. payloadFn must only append.
func AppendFrameWith(dst []byte, f *Frame, payloadFn func([]byte) []byte) []byte {
	base := len(dst)
	dst = append(dst, f.Version, byte(f.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(f.Origin)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(f.From)))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint32(dst, 0) // length: patched below
	dst = binary.BigEndian.AppendUint32(dst, 0) // crc: patched below
	dst = payloadFn(dst)
	hdr := dst[base : base+frameHeaderLen]
	payload := dst[base+frameHeaderLen:]
	binary.BigEndian.PutUint32(hdr[frameHeaderLen-8:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[frameHeaderLen-4:], frameCRC(hdr[:frameHeaderLen-4], payload))
	return dst
}

// PeekFrameMeta reads the kind and identity fields (origin, link-level
// from, outer sequence) straight out of an encoded frame's fixed-offset
// header, without validating the length or CRC — for fabric-level
// classification (e.g. the loss knob's per-frame drop hash) that must not
// pay for a full decode on every send. ok is false when buf is shorter
// than a frame header.
func PeekFrameMeta(buf []byte) (kind FrameKind, origin, from topo.SwitchID, seq uint64, ok bool) {
	if len(buf) < frameHeaderLen {
		return 0, 0, 0, 0, false
	}
	kind = FrameKind(buf[1])
	origin = topo.SwitchID(int32(binary.BigEndian.Uint32(buf[2:])))
	from = topo.SwitchID(int32(binary.BigEndian.Uint32(buf[frameFromOffset:])))
	seq = binary.BigEndian.Uint64(buf[frameSeqOffset:])
	return kind, origin, from, seq, true
}

// PatchFrameFrom rewrites the From field of an encoded frame in place (and
// fixes up the CRC), so a forwarder can relay the same buffer without
// re-encoding the payload.
func PatchFrameFrom(buf []byte, from topo.SwitchID) error {
	if len(buf) < frameHeaderLen {
		return fmt.Errorf("lsa: frame too short to patch (%d bytes)", len(buf))
	}
	binary.BigEndian.PutUint32(buf[frameFromOffset:], uint32(int32(from)))
	binary.BigEndian.PutUint32(buf[frameHeaderLen-4:],
		frameCRC(buf[:frameHeaderLen-4], buf[frameHeaderLen:]))
	return nil
}

// crcTable is the frame checksum polynomial: Castagnoli, not IEEE, because
// amd64/arm64 check it with a dedicated instruction where the IEEE
// polynomial falls back to table lookups below the carry-less-multiply
// kernel's minimum length — and protocol frames live exactly in that small
// range. Under data-plane saturation the checksum (verified on every
// receive, recomputed on every in-place forward patch) is the single
// largest CPU item, so the polynomial choice is a throughput knob; the
// error-detection strength is equivalent, and the framing is internal to
// this implementation (both ends share this code), so no compatibility is
// given up.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameCRC(header, payload []byte) uint32 {
	crc := crc32.Update(0, crcTable, header)
	return crc32.Update(crc, crcTable, payload)
}

// DecodeFrame decodes one frame from buf. It errors on truncation, version
// skew, unknown kinds, length mismatches, and checksum failures; it never
// panics on hostile input (see FuzzDecodeFrame). The returned payload
// aliases buf.
func DecodeFrame(buf []byte) (*Frame, error) {
	f := new(Frame)
	if err := DecodeFrameInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeFrameInto decodes one frame from buf into f, which may be a reused
// stack or scratch value — the allocation-free form of DecodeFrame. On error
// f is left in an unspecified state. f.Payload aliases buf.
func DecodeFrameInto(f *Frame, buf []byte) error {
	if len(buf) < frameHeaderLen {
		return fmt.Errorf("lsa: truncated frame header (%d bytes, need %d)", len(buf), frameHeaderLen)
	}
	f.Version = buf[0]
	f.Kind = FrameKind(buf[1])
	f.Origin = topo.SwitchID(int32(binary.BigEndian.Uint32(buf[2:])))
	f.From = topo.SwitchID(int32(binary.BigEndian.Uint32(buf[6:])))
	f.Seq = binary.BigEndian.Uint64(buf[10:])
	f.Payload = nil
	if f.Version != FrameVersion {
		return fmt.Errorf("lsa: frame version %d, want %d", f.Version, FrameVersion)
	}
	if !f.Kind.Valid() {
		return fmt.Errorf("lsa: unknown frame kind %d", buf[1])
	}
	length := binary.BigEndian.Uint32(buf[18:])
	if length > MaxFramePayload {
		return fmt.Errorf("lsa: frame payload length %d exceeds limit %d", length, MaxFramePayload)
	}
	want := binary.BigEndian.Uint32(buf[22:])
	payload := buf[frameHeaderLen:]
	if uint32(len(payload)) != length {
		return fmt.Errorf("lsa: frame payload is %d bytes, header says %d", len(payload), length)
	}
	if got := frameCRC(buf[:frameHeaderLen-4], payload); got != want {
		return fmt.Errorf("lsa: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	f.Payload = payload
	return nil
}
