package lsa

import (
	"bytes"
	"testing"
)

func testDataFrame() *DataFrame {
	return &DataFrame{Conn: 7, Src: 3, Seq: 99, Hops: 12, Payload: []byte("hello, tree")}
}

func TestDataFrameRoundTrip(t *testing.T) {
	d := testDataFrame()
	enc := AppendDataFrame(nil, d, 5)
	var f Frame
	if err := DecodeFrameInto(&f, enc); err != nil {
		t.Fatalf("DecodeFrameInto: %v", err)
	}
	if f.Kind != FrameData || f.Origin != d.Src || f.From != 5 || f.Seq != d.Seq {
		t.Fatalf("outer header mismatch: %+v", f)
	}
	var got DataFrame
	if err := DecodeDataInto(&got, &f); err != nil {
		t.Fatalf("DecodeDataInto: %v", err)
	}
	if got.Conn != d.Conn || got.Src != d.Src || got.Seq != d.Seq || got.Hops != d.Hops ||
		!bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, d)
	}
}

func TestDataFrameEmptyPayload(t *testing.T) {
	d := &DataFrame{Conn: 1, Src: 0, Seq: 1, Hops: 1}
	enc := AppendDataFrame(nil, d, 0)
	var f Frame
	if err := DecodeFrameInto(&f, enc); err != nil {
		t.Fatalf("DecodeFrameInto: %v", err)
	}
	var got DataFrame
	if err := DecodeDataInto(&got, &f); err != nil {
		t.Fatalf("DecodeDataInto: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", got.Payload)
	}
}

func TestDecodeDataRejectsWrongKind(t *testing.T) {
	f := testFrame() // a flood frame
	enc := EncodeFrame(f)
	var outer Frame
	if err := DecodeFrameInto(&outer, enc); err != nil {
		t.Fatalf("DecodeFrameInto: %v", err)
	}
	var d DataFrame
	if err := DecodeDataInto(&d, &outer); err == nil {
		t.Fatal("accepted a flood frame as a data frame")
	}
}

func TestDecodeDataRejectsTruncatedHeader(t *testing.T) {
	// A FrameData frame whose payload is shorter than the data header.
	f := &Frame{Version: FrameVersion, Kind: FrameData, Origin: 1, From: 1, Seq: 1, Payload: []byte{0, 0, 0}}
	enc := EncodeFrame(f)
	var outer Frame
	if err := DecodeFrameInto(&outer, enc); err != nil {
		t.Fatalf("DecodeFrameInto: %v", err)
	}
	var d DataFrame
	if err := DecodeDataInto(&d, &outer); err == nil {
		t.Fatal("accepted a data frame with a truncated data header")
	}
}

func TestPatchDataForward(t *testing.T) {
	d := testDataFrame()
	enc := AppendDataFrame(nil, d, 5)
	if err := PatchDataForward(enc, 9, d.Hops-1); err != nil {
		t.Fatalf("PatchDataForward: %v", err)
	}
	var f Frame
	if err := DecodeFrameInto(&f, enc); err != nil {
		t.Fatalf("decode after patch: %v", err)
	}
	var got DataFrame
	if err := DecodeDataInto(&got, &f); err != nil {
		t.Fatalf("DecodeDataInto after patch: %v", err)
	}
	if f.From != 9 {
		t.Fatalf("patched From = %d, want 9", f.From)
	}
	if got.Hops != d.Hops-1 {
		t.Fatalf("patched Hops = %d, want %d", got.Hops, d.Hops-1)
	}
	if got.Conn != d.Conn || got.Src != d.Src || got.Seq != d.Seq || !bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("patch disturbed other fields: %+v", got)
	}
	// A patched frame must re-encode byte-identically through the normal path.
	re := AppendDataFrame(nil, &got, f.From)
	if !bytes.Equal(re, enc) {
		t.Fatalf("patched frame does not match re-encoding:\n in=%x\nout=%x", enc, re)
	}
	if err := PatchDataForward(enc[:frameHeaderLen+2], 1, 0); err == nil {
		t.Fatal("patched a truncated data frame")
	}
}

// FuzzDecodeDataFrame feeds arbitrary bytes through the outer frame decoder
// and, for accepted data frames, the data-header parser. Rejections must be
// errors — never panics — and any accepted data frame must re-encode
// byte-identically via AppendDataFrame.
func FuzzDecodeDataFrame(f *testing.F) {
	f.Add(AppendDataFrame(nil, testDataFrame(), 5))
	f.Add(AppendDataFrame(nil, &DataFrame{Conn: 1, Src: 0, Seq: 1, Hops: 0}, 0))
	f.Add(EncodeFrame(&Frame{Version: FrameVersion, Kind: FrameData, Origin: 2, From: 3, Seq: 7, Payload: []byte{0, 0}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var outer Frame
		if err := DecodeFrameInto(&outer, data); err != nil {
			return // rejection is fine; panics and false accepts are not
		}
		if outer.Kind != FrameData {
			return // other kinds are FuzzDecodeFrame's business
		}
		var d DataFrame
		if err := DecodeDataInto(&d, &outer); err != nil {
			return
		}
		re := AppendDataFrame(nil, &d, outer.From)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted data frame does not re-encode identically:\n in=%x\nout=%x", data, re)
		}
	})
}
