package lsa

import (
	"math/rand"
	"strings"
	"testing"

	"dgmc/internal/mctree"
	"dgmc/internal/stamp"
	"dgmc/internal/topo"
)

func TestEventStringsAndPredicates(t *testing.T) {
	cases := map[Event]string{None: "none", Join: "join", Leave: "leave", Link: "link"}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
		if !e.Valid() {
			t.Errorf("%s not valid", want)
		}
	}
	if Event(9).Valid() {
		t.Error("Event(9) valid")
	}
	if got := Event(9).String(); got != "Event(9)" {
		t.Errorf("unknown event string = %q", got)
	}
	if None.IsEvent() {
		t.Error("none should not be an event")
	}
	for _, e := range []Event{Join, Leave, Link} {
		if !e.IsEvent() {
			t.Errorf("%s should be an event", e)
		}
	}
}

func TestMCValidate(t *testing.T) {
	good := &MC{Src: 1, Event: Join, Role: mctree.SenderReceiver, Conn: 7, Stamp: stamp.New(4)}
	if err := good.Validate(4); err != nil {
		t.Errorf("good LSA rejected: %v", err)
	}
	bad := []*MC{
		{Src: -1, Event: Join, Role: mctree.Sender, Stamp: stamp.New(4)},
		{Src: 4, Event: Join, Role: mctree.Sender, Stamp: stamp.New(4)},
		{Src: 0, Event: Event(9), Stamp: stamp.New(4)},
		{Src: 0, Event: Leave, Stamp: stamp.New(3)},
		{Src: 0, Event: Join, Role: 0, Stamp: stamp.New(4)},
	}
	for i, m := range bad {
		if err := m.Validate(4); err == nil {
			t.Errorf("bad LSA %d accepted", i)
		}
	}
}

func TestMCMarshalRoundTrip(t *testing.T) {
	tr := mctree.NewWithRoot(mctree.Asymmetric, 0)
	tr.AddEdge(0, 2)
	ts := stamp.Stamp{1, 0, 3}
	in := &MC{Src: 2, Event: Join, Role: mctree.Receiver, Conn: 42, Proposal: tr, Stamp: ts}

	m, nm, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if nm != nil {
		t.Fatal("decoded as non-MC")
	}
	if m.Src != 2 || m.Event != Join || m.Role != mctree.Receiver || m.Conn != 42 {
		t.Errorf("fields = %+v", m)
	}
	if !m.Proposal.Equal(tr) {
		t.Errorf("proposal = %v", m.Proposal)
	}
	if !m.Stamp.Equal(ts) {
		t.Errorf("stamp = %v", m.Stamp)
	}
}

func TestMCMarshalNilProposal(t *testing.T) {
	in := &MC{Src: 0, Event: Leave, Conn: 1, Stamp: stamp.New(2)}
	m, _, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Proposal != nil {
		t.Errorf("proposal = %v, want nil", m.Proposal)
	}
}

func TestNonMCMarshalRoundTrip(t *testing.T) {
	for _, down := range []bool{true, false} {
		in := &NonMC{Src: 3, Change: LinkChange{A: 1, B: 5, Down: down}}
		m, nm, err := Unmarshal(in.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			t.Fatal("decoded as MC")
		}
		if nm.Src != 3 || nm.Change.A != 1 || nm.Change.B != 5 || nm.Change.Down != down {
			t.Errorf("fields = %+v", nm)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},          // unknown tag
		{9},          // unknown tag
		{1, 0, 0},    // truncated MC
		{2, 0, 0, 0}, // truncated non-MC
	}
	good := (&MC{Src: 0, Event: None, Conn: 0, Stamp: stamp.New(1)}).Marshal()
	cases = append(cases,
		good[:len(good)-1], // truncated stamp
		append(good, 0xAA), // trailing garbage
	)
	badEvent := append([]byte{}, good...)
	badEvent[5] = 99
	cases = append(cases, badEvent)
	for i, buf := range cases {
		if _, _, err := Unmarshal(buf); err == nil {
			t.Errorf("case %d: Unmarshal accepted malformed input", i)
		}
	}
}

func TestStrings(t *testing.T) {
	m := &MC{Src: 1, Event: Join, Conn: 5, Stamp: stamp.Stamp{1}}
	if s := m.String(); !strings.Contains(s, "S=1") || !strings.Contains(s, "join") || !strings.Contains(s, "∅") {
		t.Errorf("MC string = %q", s)
	}
	m.Proposal = mctree.New(mctree.Symmetric)
	if s := m.String(); strings.Contains(s, "∅") {
		t.Errorf("MC string with proposal = %q", s)
	}
	nm := &NonMC{Src: 2, Change: LinkChange{A: 0, B: 1, Down: true}}
	if s := nm.String(); !strings.Contains(s, "down") {
		t.Errorf("NonMC string = %q", s)
	}
	up := LinkChange{A: 0, B: 1}
	if s := up.String(); !strings.Contains(s, "up") {
		t.Errorf("LinkChange string = %q", s)
	}
}

func TestFuzzRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(12)
		ts := stamp.New(n)
		for j := range ts {
			ts[j] = uint32(r.Intn(5))
		}
		var tr *mctree.Tree
		if r.Intn(2) == 0 {
			tr = mctree.New(mctree.Kind(1 + r.Intn(3)))
			for e := 0; e < r.Intn(6); e++ {
				a := topo.SwitchID(r.Intn(n))
				b := topo.SwitchID(r.Intn(n))
				if a != b {
					tr.AddEdge(a, b)
				}
			}
		}
		in := &MC{
			Src:      topo.SwitchID(r.Intn(n)),
			Event:    Event(r.Intn(4)),
			Role:     mctree.Role(1 + r.Intn(3)),
			Conn:     ConnID(r.Intn(100)),
			Proposal: tr,
			Stamp:    ts,
		}
		m, _, err := Unmarshal(in.Marshal())
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if m.Src != in.Src || m.Event != in.Event || m.Conn != in.Conn || m.Role != in.Role {
			t.Fatalf("iter %d: fields changed", i)
		}
		if !m.Stamp.Equal(in.Stamp) {
			t.Fatalf("iter %d: stamp changed", i)
		}
		if (m.Proposal == nil) != (in.Proposal == nil) || (m.Proposal != nil && !m.Proposal.Equal(in.Proposal)) {
			t.Fatalf("iter %d: proposal changed", i)
		}
	}
}

func TestNonMCSequenceRoundTrip(t *testing.T) {
	in := &NonMC{Src: 2, Seq: 7, Change: LinkChange{A: 0, B: 1, Down: true}}
	_, nm, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if nm.Seq != 7 {
		t.Errorf("seq = %d, want 7", nm.Seq)
	}
}
