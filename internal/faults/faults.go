// Package faults provides deterministic fault injection for the simulated
// network fabric: per-link message loss, duplication, extra delay jitter,
// and scheduled transient link flaps. A Plan describes what can go wrong;
// an Injector, bound to a simulation kernel, turns the plan into concrete
// per-transmission outcomes drawn from a seeded RNG, so every faulty run is
// exactly reproducible from (plan, seed).
//
// Faults act at the transport level: a flapped link stays up in the
// topology (no link-state event is generated), it just silently eats every
// message during its outage window — the hardest case for a flooding
// protocol, since nothing tells the routing layer to route around it. The
// reliable flooding mode (flood.Reliable) plus the resync machinery in
// internal/core exist to mask exactly these faults.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

// LinkFaults describes the fault behaviour of one link (or the plan-wide
// default): each transmission over the link is independently dropped with
// probability Drop, duplicated with probability Dup, and delayed by an
// extra uniform amount in [0, Jitter].
type LinkFaults struct {
	Drop   float64
	Dup    float64
	Jitter time.Duration
}

// clean reports whether the faults are all zero (a perfect link).
func (lf LinkFaults) clean() bool { return lf.Drop == 0 && lf.Dup == 0 && lf.Jitter == 0 }

func (lf LinkFaults) validate() error {
	if lf.Drop < 0 || lf.Drop > 1 {
		return fmt.Errorf("faults: drop probability %v outside [0,1]", lf.Drop)
	}
	if lf.Dup < 0 || lf.Dup > 1 {
		return fmt.Errorf("faults: duplication probability %v outside [0,1]", lf.Dup)
	}
	if lf.Jitter < 0 {
		return fmt.Errorf("faults: negative jitter %v", lf.Jitter)
	}
	return nil
}

func (lf LinkFaults) String() string {
	return fmt.Sprintf("drop=%.3f dup=%.3f jitter=%v", lf.Drop, lf.Dup, lf.Jitter)
}

// Flap is a scheduled transient outage of the link (A,B): every
// transmission in either direction during [DownAt, UpAt) is dropped. The
// topology is not informed — the flap models an undetected outage.
type Flap struct {
	A, B   topo.SwitchID
	DownAt sim.Time
	UpAt   sim.Time
}

func (f Flap) String() string {
	return fmt.Sprintf("flap(%d,%d) down %v..%v", f.A, f.B, f.DownAt, f.UpAt)
}

// PeriodicFlaps expands a periodically flapping link into explicit Flap
// windows: starting at start, the link (a,b) repeats a cycle of length
// period, down for the first duty fraction of each cycle and up for the
// rest, for cycles cycles. duty must be in (0,1) — a mobility pattern, not
// a permanent failure.
func PeriodicFlaps(a, b topo.SwitchID, start, period sim.Time, duty float64, cycles int) []Flap {
	if period <= 0 || duty <= 0 || duty >= 1 || cycles <= 0 {
		return nil
	}
	out := make([]Flap, 0, cycles)
	down := sim.Time(float64(period) * duty)
	if down < 1 {
		down = 1
	}
	for i := 0; i < cycles; i++ {
		at := start + sim.Time(i)*period
		out = append(out, Flap{A: a, B: b, DownAt: at, UpAt: at + down})
	}
	return out
}

// Partition cuts the network into groups for a window of virtual time:
// every transmission between switches in *different* groups during
// [At, HealAt) is dropped, atomically for the whole link set — both
// directions, all crossing links, from the same instant. Switches not
// listed in any group are unconstrained. Like a Flap, a Partition acts at
// the transport level: the topology is not informed, modelling an
// undetected split (the hardest case — no link-state event tells either
// side to stop expecting the other). A zero HealAt means the partition
// never heals within the run.
//
// The transport cut is only half of a partition scenario: on heal, the
// protocol must reconcile the sides' diverged vector stamps. See
// core.Domain.SchedulePartitionHeal, which pairs with this primitive.
type Partition struct {
	Groups [][]topo.SwitchID
	At     sim.Time
	HealAt sim.Time
}

// Crosses reports whether (a,b) connects two different groups of p.
func (p Partition) Crosses(a, b topo.SwitchID) bool {
	ga, gb := -1, -1
	for i, g := range p.Groups {
		for _, s := range g {
			if s == a {
				ga = i
			}
			if s == b {
				gb = i
			}
		}
	}
	return ga >= 0 && gb >= 0 && ga != gb
}

func (p Partition) validate() error {
	if len(p.Groups) < 2 {
		return fmt.Errorf("faults: partition needs at least 2 groups, got %d", len(p.Groups))
	}
	seen := map[topo.SwitchID]bool{}
	for _, g := range p.Groups {
		if len(g) == 0 {
			return fmt.Errorf("faults: partition has an empty group")
		}
		for _, s := range g {
			if seen[s] {
				return fmt.Errorf("faults: switch %d in two partition groups", s)
			}
			seen[s] = true
		}
	}
	if p.At < 0 || (p.HealAt != 0 && p.HealAt <= p.At) {
		return fmt.Errorf("faults: bad partition window %v..%v", p.At, p.HealAt)
	}
	return nil
}

func (p Partition) String() string {
	var b strings.Builder
	b.WriteString("partition(")
	for i, g := range p.Groups {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, s := range g {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	if p.HealAt == 0 {
		fmt.Fprintf(&b, ") from %v", p.At)
	} else {
		fmt.Fprintf(&b, ") %v..%v", p.At, p.HealAt)
	}
	return b.String()
}

func linkKey(a, b topo.SwitchID) [2]topo.SwitchID {
	if a > b {
		a, b = b, a
	}
	return [2]topo.SwitchID{a, b}
}

// Plan is a complete, declarative fault scenario. The zero Plan is a
// perfect network.
type Plan struct {
	// Seed drives every random draw the injector makes.
	Seed int64
	// Default applies to every link without a per-link override.
	Default LinkFaults
	// Flaps lists scheduled transient outages.
	Flaps []Flap
	// Partitions lists scheduled whole-network splits.
	Partitions []Partition

	links map[[2]topo.SwitchID]LinkFaults
}

// SetLink overrides the fault behaviour of the link (a,b); direction is
// ignored.
func (p *Plan) SetLink(a, b topo.SwitchID, lf LinkFaults) {
	if p.links == nil {
		p.links = make(map[[2]topo.SwitchID]LinkFaults)
	}
	p.links[linkKey(a, b)] = lf
}

// Link returns the fault behaviour in effect for link (a,b).
func (p *Plan) Link(a, b topo.SwitchID) LinkFaults {
	if lf, ok := p.links[linkKey(a, b)]; ok {
		return lf
	}
	return p.Default
}

// Validate checks that probabilities are in [0,1], jitters are non-negative,
// and flap windows are well-ordered.
func (p *Plan) Validate() error {
	if err := p.Default.validate(); err != nil {
		return err
	}
	for k, lf := range p.links {
		if err := lf.validate(); err != nil {
			return fmt.Errorf("link (%d,%d): %w", k[0], k[1], err)
		}
	}
	for _, f := range p.Flaps {
		if f.DownAt < 0 || f.UpAt <= f.DownAt {
			return fmt.Errorf("faults: bad flap window %v", f)
		}
	}
	for _, pt := range p.Partitions {
		if err := pt.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Describe renders the plan for traces and experiment logs.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan (seed %d): default %s", p.Seed, p.Default)
	keys := make([][2]topo.SwitchID, 0, len(p.links))
	for k := range p.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "; link(%d,%d) %s", k[0], k[1], p.links[k])
	}
	for _, f := range p.Flaps {
		fmt.Fprintf(&b, "; %s", f)
	}
	for _, pt := range p.Partitions {
		fmt.Fprintf(&b, "; %s", pt)
	}
	return b.String()
}

// Outcome is the injector's verdict for one transmission.
type Outcome struct {
	// Drop means the transmission is lost.
	Drop bool
	// Flapped means the loss was caused by a flap window, not random loss.
	Flapped bool
	// Partitioned means the loss was caused by an active partition.
	Partitioned bool
	// Duplicate means a second, independent copy is also delivered.
	Duplicate bool
	// Jitter is the extra delay added to the (primary) delivery.
	Jitter time.Duration
	// DupJitter is the extra delay added to the duplicate delivery.
	DupJitter time.Duration
}

// Injector applies a Plan to individual transmissions. It must only be used
// from kernel context (simulation events and processes); the kernel's
// deterministic scheduling then makes the draw sequence — and hence the
// whole faulty run — reproducible.
type Injector struct {
	k    *sim.Kernel
	plan Plan
	rng  *rand.Rand

	applied uint64
}

// New binds plan to kernel k after validating it.
func New(k *sim.Kernel, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{k: k, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() *Plan { return &in.plan }

// Applied returns how many transmissions have been subjected to the plan.
func (in *Injector) Applied() uint64 { return in.applied }

// Apply decides the fate of one transmission over link (a,b) at the current
// virtual time.
func (in *Injector) Apply(a, b topo.SwitchID) Outcome {
	in.applied++
	now := in.k.Now()
	for _, pt := range in.plan.Partitions {
		if now >= pt.At && (pt.HealAt == 0 || now < pt.HealAt) && pt.Crosses(a, b) {
			return Outcome{Drop: true, Partitioned: true}
		}
	}
	for _, f := range in.plan.Flaps {
		if linkKey(f.A, f.B) == linkKey(a, b) && now >= f.DownAt && now < f.UpAt {
			return Outcome{Drop: true, Flapped: true}
		}
	}
	lf := in.plan.Link(a, b)
	if lf.clean() {
		return Outcome{}
	}
	var o Outcome
	if lf.Drop > 0 && in.rng.Float64() < lf.Drop {
		o.Drop = true
	}
	if lf.Dup > 0 && in.rng.Float64() < lf.Dup {
		o.Duplicate = true
	}
	if lf.Jitter > 0 {
		o.Jitter = time.Duration(in.rng.Int63n(int64(lf.Jitter) + 1))
		if o.Duplicate {
			o.DupJitter = time.Duration(in.rng.Int63n(int64(lf.Jitter) + 1))
		}
	}
	return o
}
