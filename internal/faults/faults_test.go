package faults

import (
	"strings"
	"testing"
	"time"

	"dgmc/internal/sim"
	"dgmc/internal/topo"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"drop above one", Plan{Default: LinkFaults{Drop: 1.5}}},
		{"negative drop", Plan{Default: LinkFaults{Drop: -0.1}}},
		{"dup above one", Plan{Default: LinkFaults{Dup: 2}}},
		{"negative jitter", Plan{Default: LinkFaults{Jitter: -time.Microsecond}}},
		{"inverted flap window", Plan{Flaps: []Flap{{A: 0, B: 1, DownAt: 10, UpAt: 5}}}},
		{"empty flap window", Plan{Flaps: []Flap{{A: 0, B: 1, DownAt: 10, UpAt: 10}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.plan)
		}
	}
	var bad Plan
	bad.SetLink(2, 3, LinkFaults{Drop: 7})
	if err := bad.Validate(); err == nil {
		t.Error("per-link override with bad drop accepted")
	}
	good := Plan{Default: LinkFaults{Drop: 0.5, Dup: 0.1, Jitter: time.Microsecond},
		Flaps: []Flap{{A: 0, B: 1, DownAt: 0, UpAt: 5}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Default: LinkFaults{Drop: 0.3, Dup: 0.2, Jitter: 10 * time.Microsecond}}
	draw := func() []Outcome {
		k := sim.NewKernel()
		defer k.Shutdown()
		in, err := New(k, plan)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Outcome, 0, 100)
		for i := 0; i < 100; i++ {
			out = append(out, in.Apply(topo.SwitchID(i%5), topo.SwitchID((i+1)%5)))
		}
		if in.Applied() != 100 {
			t.Fatalf("Applied = %d, want 100", in.Applied())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	var drops, dups, jitters int
	for _, o := range a {
		if o.Drop {
			drops++
		}
		if o.Duplicate {
			dups++
		}
		if o.Jitter > 0 {
			jitters++
		}
		if o.Flapped {
			t.Error("flap reported by a plan without flaps")
		}
		if o.Jitter > 10*time.Microsecond || o.DupJitter > 10*time.Microsecond {
			t.Errorf("jitter above bound: %+v", o)
		}
	}
	if drops == 0 || dups == 0 || jitters == 0 {
		t.Errorf("fault mix unexercised: drops=%d dups=%d jitters=%d", drops, dups, jitters)
	}
}

func TestFlapWindow(t *testing.T) {
	plan := Plan{Flaps: []Flap{{A: 1, B: 2, DownAt: sim.Time(10 * time.Microsecond), UpAt: sim.Time(20 * time.Microsecond)}}}
	k := sim.NewKernel()
	defer k.Shutdown()
	in, err := New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at      sim.Time
		a, b    topo.SwitchID
		flapped bool
	}
	probes := []probe{
		{at: sim.Time(5 * time.Microsecond), a: 1, b: 2, flapped: false},  // before the window
		{at: sim.Time(10 * time.Microsecond), a: 1, b: 2, flapped: true},  // window start is inclusive
		{at: sim.Time(15 * time.Microsecond), a: 2, b: 1, flapped: true},  // direction ignored
		{at: sim.Time(15 * time.Microsecond), a: 0, b: 1, flapped: false}, // other links unaffected
		{at: sim.Time(20 * time.Microsecond), a: 1, b: 2, flapped: false}, // window end is exclusive
	}
	k.Spawn("probe", func(p *sim.Process) {
		for _, pr := range probes {
			p.Hold(pr.at - p.Now())
			o := in.Apply(pr.a, pr.b)
			if o.Flapped != pr.flapped || o.Drop != pr.flapped {
				t.Errorf("t=%v link(%d,%d): outcome %+v, want flapped=%v", pr.at, pr.a, pr.b, o, pr.flapped)
			}
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPerLinkOverrideAndDescribe(t *testing.T) {
	plan := Plan{Seed: 7, Default: LinkFaults{Drop: 0.1}}
	plan.SetLink(3, 1, LinkFaults{Drop: 0.9, Jitter: time.Microsecond})
	if lf := plan.Link(1, 3); lf.Drop != 0.9 {
		t.Errorf("override not canonicalized across direction: %+v", lf)
	}
	if lf := plan.Link(0, 1); lf.Drop != 0.1 {
		t.Errorf("default not applied: %+v", lf)
	}
	desc := plan.Describe()
	for _, want := range []string{"seed 7", "drop=0.100", "link(1,3)", "drop=0.900"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe() = %q, missing %q", desc, want)
		}
	}
}

func TestPartitionCrossesAndValidate(t *testing.T) {
	p := Partition{Groups: [][]topo.SwitchID{{0, 1}, {2, 3}}, At: 5, HealAt: 10}
	cases := []struct {
		a, b    topo.SwitchID
		crosses bool
	}{
		{0, 2, true},
		{2, 0, true}, // direction ignored
		{0, 1, false},
		{2, 3, false},
		{0, 7, false}, // unlisted switch unconstrained
		{7, 8, false},
	}
	for _, c := range cases {
		if got := p.Crosses(c.a, c.b); got != c.crosses {
			t.Errorf("Crosses(%d,%d) = %v, want %v", c.a, c.b, got, c.crosses)
		}
	}

	bad := []Partition{
		{Groups: [][]topo.SwitchID{{0, 1}}, At: 0, HealAt: 5},         // one group
		{Groups: [][]topo.SwitchID{{0}, {}}, At: 0, HealAt: 5},        // empty group
		{Groups: [][]topo.SwitchID{{0, 1}, {1, 2}}, At: 0, HealAt: 5}, // overlap
		{Groups: [][]topo.SwitchID{{0}, {1}}, At: 10, HealAt: 5},      // heal before split
		{Groups: [][]topo.SwitchID{{0}, {1}}, At: -1, HealAt: 5},      // negative start
	}
	for i, pt := range bad {
		if err := (&Plan{Partitions: []Partition{pt}}).Validate(); err == nil {
			t.Errorf("bad partition %d accepted: %+v", i, pt)
		}
	}
	never := Partition{Groups: [][]topo.SwitchID{{0}, {1}}, At: 3} // HealAt 0: never heals
	if err := (&Plan{Partitions: []Partition{never}}).Validate(); err != nil {
		t.Errorf("never-healing partition rejected: %v", err)
	}
	if s := p.String(); !strings.Contains(s, "partition(0,1|2,3)") {
		t.Errorf("String() = %q", s)
	}
}

func TestPartitionWindowInjector(t *testing.T) {
	plan := Plan{Partitions: []Partition{{
		Groups: [][]topo.SwitchID{{0, 1}, {2, 3}},
		At:     sim.Time(10 * time.Microsecond),
		HealAt: sim.Time(20 * time.Microsecond),
	}}}
	k := sim.NewKernel()
	defer k.Shutdown()
	in, err := New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at          sim.Time
		a, b        topo.SwitchID
		partitioned bool
	}
	probes := []probe{
		{at: sim.Time(5 * time.Microsecond), a: 0, b: 2, partitioned: false},  // before the split
		{at: sim.Time(10 * time.Microsecond), a: 0, b: 2, partitioned: true},  // split start inclusive
		{at: sim.Time(12 * time.Microsecond), a: 1, b: 3, partitioned: true},  // whole link set, atomically
		{at: sim.Time(12 * time.Microsecond), a: 3, b: 0, partitioned: true},  // both directions
		{at: sim.Time(14 * time.Microsecond), a: 0, b: 1, partitioned: false}, // intra-group unaffected
		{at: sim.Time(20 * time.Microsecond), a: 0, b: 2, partitioned: false}, // heal is exclusive
	}
	k.Spawn("probe", func(p *sim.Process) {
		for _, pr := range probes {
			p.Hold(pr.at - p.Now())
			o := in.Apply(pr.a, pr.b)
			if o.Partitioned != pr.partitioned || o.Drop != pr.partitioned {
				t.Errorf("t=%v link(%d,%d): outcome %+v, want partitioned=%v", pr.at, pr.a, pr.b, o, pr.partitioned)
			}
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicFlaps(t *testing.T) {
	flaps := PeriodicFlaps(1, 2, sim.Time(100), sim.Time(50), 0.4, 3)
	if len(flaps) != 3 {
		t.Fatalf("got %d flaps, want 3", len(flaps))
	}
	for i, f := range flaps {
		wantDown := sim.Time(100 + 50*i)
		if f.DownAt != wantDown || f.UpAt != wantDown+20 {
			t.Errorf("cycle %d: window %v..%v, want %v..%v", i, f.DownAt, f.UpAt, wantDown, wantDown+20)
		}
		if f.A != 1 || f.B != 2 {
			t.Errorf("cycle %d: link (%d,%d), want (1,2)", i, f.A, f.B)
		}
	}
	// Expanded windows must validate as a plan.
	if err := (&Plan{Flaps: flaps}).Validate(); err != nil {
		t.Errorf("expanded flaps rejected: %v", err)
	}
	// A tiny duty still yields a non-empty down window.
	tiny := PeriodicFlaps(0, 1, 0, sim.Time(10), 0.01, 1)
	if len(tiny) != 1 || tiny[0].UpAt <= tiny[0].DownAt {
		t.Errorf("tiny duty produced empty window: %+v", tiny)
	}
	for _, invalid := range [][]Flap{
		PeriodicFlaps(0, 1, 0, 0, 0.5, 3),            // no period
		PeriodicFlaps(0, 1, 0, sim.Time(10), 0, 3),   // zero duty
		PeriodicFlaps(0, 1, 0, sim.Time(10), 1.0, 3), // permanent outage
		PeriodicFlaps(0, 1, 0, sim.Time(10), 0.5, 0), // no cycles
	} {
		if invalid != nil {
			t.Errorf("invalid parameters produced flaps: %+v", invalid)
		}
	}
}
