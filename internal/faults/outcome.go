package faults

import "fmt"

// Choice is what can happen to one in-flight transmission, as a discrete
// branch point. The Injector in this package draws per-transmission
// Outcomes from a seeded RNG (probabilistic fault simulation); the
// schedule-exploration harness (internal/explore) instead treats each
// possible Choice as an explicit branch of the schedule, so a bounded
// number of drops and duplications is explored exhaustively rather than
// sampled.
type Choice uint8

const (
	// Deliver hands the message to its destination.
	Deliver Choice = iota
	// Drop silently discards the message.
	Drop
	// Dup splits the message into two identical in-flight copies.
	Dup
)

// String implements fmt.Stringer.
func (c Choice) String() string {
	switch c {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	default:
		return fmt.Sprintf("Choice(%d)", uint8(c))
	}
}

// Choices enumerates the branches available to a transmission given which
// fault classes are still within budget. Deliver is always first: explorers
// that pick the first enabled choice degrade to fault-free execution.
func Choices(allowDrop, allowDup bool) []Choice {
	out := []Choice{Deliver}
	if allowDrop {
		out = append(out, Drop)
	}
	if allowDup {
		out = append(out, Dup)
	}
	return out
}
