package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var got []int
	k.Schedule(30*Microsecond, func() { got = append(got, 3) })
	k.Schedule(10*Microsecond, func() { got = append(got, 1) })
	k.Schedule(20*Microsecond, func() { got = append(got, 2) })

	st, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Events != 3 {
		t.Errorf("events = %d, want 3", st.Events)
	}
	if st.End != 30*Microsecond {
		t.Errorf("end = %v, want 30µs", st.End)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var fired []Time
	k.Schedule(10, func() {
		fired = append(fired, k.Now())
		k.Schedule(5, func() { fired = append(fired, k.Now()) })
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	ran := false
	k.Schedule(-5, func() { ran = true })
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != 0 {
		t.Fatalf("now = %v, want 0", k.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var at Time
	k.ScheduleAt(42, func() { at = k.Now() })
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 42 {
		t.Fatalf("ran at %v, want 42", at)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var got []int
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(100, func() { got = append(got, 2) })

	if _, err := k.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after RunUntil(50) got %v, want [1]", got)
	}
	if k.Now() != 50 {
		t.Fatalf("now = %v, want 50", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("after Run got %v, want both events", got)
	}
}

func TestProcessHoldAdvancesTime(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var times []Time
	k.Spawn("holder", func(p *Process) {
		times = append(times, p.Now())
		p.Hold(7 * Microsecond)
		times = append(times, p.Now())
		p.Hold(3 * Microsecond)
		times = append(times, p.Now())
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{0, 7 * Microsecond, 10 * Microsecond}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		defer k.Shutdown()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Process) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Hold(10)
				}
			})
		}
		if _, err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("nondeterministic schedule at trial %d: %v vs %v", trial, again, first)
			}
		}
	}
}

func TestMailboxSendRecv(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	mb := NewMailbox(k, "inbox")
	var got []int
	k.Spawn("receiver", func(p *Process) {
		for i := 0; i < 3; i++ {
			v, ok := mb.Recv(p).(int)
			if !ok {
				t.Error("non-int message")
				return
			}
			got = append(got, v)
		}
	})
	mb.Send(1, 10)
	mb.Send(2, 20)
	mb.Send(3, 30)
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestMailboxRecvBlocksUntilDelivery(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	mb := NewMailbox(k, "inbox")
	var recvAt Time
	k.Spawn("receiver", func(p *Process) {
		mb.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("sender", func(p *Process) {
		p.Hold(25)
		mb.Send("hello", 5)
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvAt != 30 {
		t.Fatalf("received at %v, want 30", recvAt)
	}
}

func TestMailboxTryRecvAndDrain(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	mb := NewMailbox(k, "inbox")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
	mb.Send("x", 0)
	mb.Send("y", 0)
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mb.Len() != 2 {
		t.Fatalf("len = %d, want 2", mb.Len())
	}
	if v, ok := mb.Peek(); !ok || v != "x" {
		t.Fatalf("peek = %v,%v", v, ok)
	}
	if v, ok := mb.TryRecv(); !ok || v != "x" {
		t.Fatalf("TryRecv = %v,%v", v, ok)
	}
	rest := mb.Drain()
	if len(rest) != 1 || rest[0] != "y" {
		t.Fatalf("drain = %v", rest)
	}
	if mb.Len() != 0 {
		t.Fatalf("len after drain = %d", mb.Len())
	}
}

func TestMailboxMultipleWaitersFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	mb := NewMailbox(k, "inbox")
	var order []string
	for _, name := range []string{"first", "second"} {
		name := name
		k.Spawn(name, func(p *Process) {
			mb.Recv(p)
			order = append(order, name)
		})
	}
	mb.Send(1, 10)
	mb.Send(2, 20)
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("waiter order = %v", order)
	}
}

func TestShutdownUnwindsBlockedProcesses(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox(k, "never")
	started := false
	k.Spawn("stuck-recv", func(p *Process) {
		started = true
		mb.Recv(p) // never satisfied
		t.Error("stuck-recv resumed unexpectedly")
	})
	k.Spawn("stuck-hold", func(p *Process) {
		p.Hold(1)
		mb.Recv(p)
		t.Error("stuck-hold resumed unexpectedly")
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !started {
		t.Fatal("process never started")
	}
	k.Shutdown() // must not hang and must reap both goroutines
	if _, err := k.Run(); err != ErrStopped {
		t.Fatalf("Run after Shutdown = %v, want ErrStopped", err)
	}
	k.Shutdown() // idempotent
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	var childRan bool
	k.Spawn("parent", func(p *Process) {
		p.Hold(5)
		k.Spawn("child", func(c *Process) {
			c.Hold(5)
			childRan = true
		})
		p.Hold(20)
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child process did not run")
	}
}

func TestProcessAccessors(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	p := k.Spawn("worker", func(p *Process) {})
	if p.Name() != "worker" {
		t.Errorf("name = %q", p.Name())
	}
	if p.ID() != 0 {
		t.Errorf("id = %d", p.ID())
	}
	if p.Kernel() != k {
		t.Error("kernel accessor mismatch")
	}
	if s := p.String(); s != "proc(0,worker)" {
		t.Errorf("string = %q", s)
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
