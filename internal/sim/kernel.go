package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Time is a point in virtual time, measured from the start of the
// simulation. It reuses time.Duration so callers can write 10*sim.Microsecond
// style arithmetic with the standard library's duration constants.
type Time = time.Duration

// Convenient re-exports so simulation code does not need to import "time"
// only for unit constants.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// ErrStopped is returned by process operations after the kernel has been
// shut down. Process bodies do not normally observe it: the kernel unwinds
// blocked processes internally during Shutdown.
var ErrStopped = errors.New("sim: kernel stopped")

// event is a single entry in the kernel's event queue. Mailbox deliveries —
// by far the most common event in protocol simulations — are stored inline
// (mb, msg) instead of behind a heap-allocated closure, so scheduling a send
// costs no allocation beyond any boxing of msg itself.
type event struct {
	at  Time
	seq uint64
	fn  func()
	mb  *Mailbox
	msg any
}

func (e *event) run() {
	if e.mb != nil {
		e.mb.deliver(e.msg)
		return
	}
	e.fn()
}

// eventHeap is a hand-rolled binary min-heap of event values ordered by
// (time, sequence) — a deterministic total order for simultaneous events.
// Storing values rather than pointers keeps the queue in one contiguous
// allocation that amortises to zero as the simulation runs.
type eventHeap []event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop fn/msg references so they can be collected
	*h = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && eventLess(&s[r], &s[l]) {
			c = r
		}
		if !eventLess(&s[c], &s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// Stats reports what a completed Run did.
type Stats struct {
	// Events is the number of events executed.
	Events uint64
	// End is the virtual time at which the run stopped.
	End Time
	// Spawned is the total number of processes ever spawned.
	Spawned int
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewKernel. A Kernel is not safe for concurrent use
// from multiple OS-level goroutines other than through the Process
// primitives it hands out.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventHeap
	events uint64

	procs   []*Process
	killed  chan struct{}
	stopped bool
	wg      sync.WaitGroup

	// horizon, when nonzero, bounds Run: events past it stay queued.
	horizon Time
}

// NewKernel returns a kernel with an empty event queue at virtual time 0.
func NewKernel() *Kernel {
	return &Kernel{killed: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for fn to run in kernel context at now+delay. A negative
// delay is treated as zero. Schedule must be called from kernel context or
// from a running process (never from outside a Run).
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	k.queue.push(event{at: k.now + delay, seq: k.seq, fn: fn})
}

// scheduleDelivery is Mailbox.Send's closure-free fast path: the delivery is
// encoded in the event itself.
func (k *Kernel) scheduleDelivery(delay Time, mb *Mailbox, msg any) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	k.queue.push(event{at: k.now + delay, seq: k.seq, mb: mb, msg: msg})
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times in
// the past run at the current time.
func (k *Kernel) ScheduleAt(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.Schedule(at-k.now, fn)
}

// Run executes events until the queue is empty (quiescence) or, when a prior
// SetHorizon is in effect, until the next event would exceed the horizon.
// Processes blocked on mailboxes at quiescence are considered idle servers,
// not errors. Run may be called repeatedly; each call resumes from the
// current state.
func (k *Kernel) Run() (Stats, error) {
	if k.stopped {
		return Stats{}, ErrStopped
	}
	for len(k.queue) > 0 {
		if k.horizon > 0 && k.queue[0].at > k.horizon {
			break
		}
		ev := k.queue.pop()
		if ev.at > k.now {
			k.now = ev.at
		}
		k.events++
		ev.run()
	}
	return Stats{Events: k.events, End: k.now, Spawned: len(k.procs)}, nil
}

// RunUntil executes events with timestamps not exceeding t and then stops,
// leaving later events queued. The clock is advanced to t even if the queue
// drains earlier, so repeated RunUntil calls step the simulation forward.
func (k *Kernel) RunUntil(t Time) (Stats, error) {
	prev := k.horizon
	k.horizon = t
	st, err := k.Run()
	k.horizon = prev
	if err == nil && k.now < t {
		k.now = t
		st.End = t
	}
	return st, err
}

// SetHorizon bounds all subsequent Run calls to virtual time t. A zero t
// removes the bound.
func (k *Kernel) SetHorizon(t Time) { k.horizon = t }

// Shutdown terminates every process that is still blocked (in Hold or Recv)
// and waits for all process goroutines to exit. It must be called once the
// caller is done with the kernel; afterwards the kernel is unusable.
func (k *Kernel) Shutdown() {
	if k.stopped {
		return
	}
	k.stopped = true
	close(k.killed)
	k.wg.Wait()
}

// killPanic is the sentinel used to unwind process goroutines on Shutdown.
type killPanic struct{}

// Process is a simulated process. Its body runs on a dedicated goroutine
// but only ever executes while the kernel has handed it control, so process
// code may freely touch shared simulation state without locking.
type Process struct {
	k      *Kernel
	name   string
	id     int
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Spawn creates a process named name executing body and schedules it to
// start at the current virtual time (after already-queued simultaneous
// events). It returns immediately.
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		k:      k,
		name:   name,
		id:     len(k.procs),
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killPanic); ok {
					return // kernel shutdown: exit quietly without yielding
				}
				panic(r)
			}
		}()
		p.waitResume()
		body(p)
		p.done = true
		p.yield <- struct{}{}
	}()
	k.Schedule(0, func() { k.step(p) })
	return p
}

// step hands control to p and blocks until p yields back (by holding,
// blocking on a mailbox, or terminating).
func (k *Kernel) step(p *Process) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// waitResume parks the goroutine until the kernel resumes it, or unwinds it
// if the kernel is shut down.
func (p *Process) waitResume() {
	select {
	case <-p.resume:
	case <-p.k.killed:
		panic(killPanic{})
	}
}

// yieldToKernel returns control to the kernel loop.
func (p *Process) yieldToKernel() {
	select {
	case p.yield <- struct{}{}:
	case <-p.k.killed:
		panic(killPanic{})
	}
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// ID returns the process's spawn index, unique within its kernel.
func (p *Process) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Process) Now() Time { return p.k.now }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Hold suspends the process for d of virtual time. Other events and
// processes run in the meantime; this is the primitive that models time
// spent computing (the paper's Tc) or transmitting.
func (p *Process) Hold(d Time) {
	p.k.Schedule(d, func() { p.k.step(p) })
	p.yieldToKernel()
	p.waitResume()
}

// String implements fmt.Stringer.
func (p *Process) String() string {
	return fmt.Sprintf("proc(%d,%s)", p.id, p.name)
}
