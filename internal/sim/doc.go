// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel, in the spirit of the CSIM simulation language used by
// the original D-GMC study.
//
// A simulation consists of a Kernel owning a virtual clock and an event
// queue, and a set of Processes. Each Process is backed by a goroutine, but
// the kernel enforces strictly sequential, cooperative execution: at any
// instant at most one process runs, and control returns to the kernel
// whenever a process holds (advances virtual time) or blocks on a Mailbox.
// Events scheduled for the same virtual time are executed in scheduling
// order (a monotone sequence number breaks ties), so a simulation with a
// fixed seed is fully reproducible.
//
// The package deliberately mirrors the CSIM primitives the paper relies on:
//
//   - Process creation (Kernel.Spawn),
//   - hold(t) (Process.Hold),
//   - mailboxes with blocking receive (Mailbox.Recv) and timed send
//     (Mailbox.Send).
//
// On top of these the D-GMC simulator models switches as processes that
// exchange link-state advertisements through mailboxes.
package sim
