package sim_test

import (
	"fmt"
	"log"

	"dgmc/internal/sim"
)

// Example shows the CSIM-style primitives: processes that hold virtual
// time and exchange messages through mailboxes, scheduled deterministically.
func Example() {
	k := sim.NewKernel()
	defer k.Shutdown()

	inbox := sim.NewMailbox(k, "inbox")
	k.Spawn("producer", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			p.Hold(10 * sim.Microsecond)
			inbox.Send(i, 5*sim.Microsecond) // 5µs transmission delay
		}
	})
	k.Spawn("consumer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			v := inbox.Recv(p)
			fmt.Printf("t=%v received %v\n", p.Now(), v)
		}
	})

	if _, err := k.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// t=15µs received 1
	// t=25µs received 2
	// t=35µs received 3
}
