package sim

// Timer is a cancellable one-shot timer created with Kernel.After. It exists
// for protocol machinery like retransmission timers, where the common case
// is that the awaited condition arrives first and the timer must then do
// nothing. Stopping a timer does not remove its kernel event; the event
// fires as a no-op, so quiescence is still reached after boundedly many
// events.
type Timer struct {
	stopped bool
	fired   bool
}

// After schedules fn to run once at now+delay unless the returned timer is
// stopped first. Like Schedule, it may be called from kernel context or from
// a running process.
func (k *Kernel) After(delay Time, fn func()) *Timer {
	t := &Timer{}
	k.Schedule(delay, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Stop cancels the timer. It reports whether the cancellation was in time:
// false means the timer had already fired (or was already stopped).
func (t *Timer) Stop() bool {
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the timer's function has run.
func (t *Timer) Fired() bool { return t.fired }
