package sim

// Mailbox is an unbounded, FIFO message queue between simulated processes.
// Sends are timestamped deliveries scheduled on the kernel; receives block
// the calling process until a message is available. Because the kernel runs
// processes one at a time, no locking is needed.
type Mailbox struct {
	k       *Kernel
	name    string
	queue   []any
	waiters []*Process
}

// NewMailbox returns an empty mailbox attached to kernel k.
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name}
}

// Name returns the mailbox name given at creation.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued (already delivered) messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Send schedules msg to arrive after delay of virtual time. A zero delay
// delivers at the current time, after already-queued simultaneous events.
// Send may be called from kernel context or from any process.
func (m *Mailbox) Send(msg any, delay Time) {
	m.k.scheduleDelivery(delay, m, msg)
}

// deliver enqueues msg and wakes the longest-waiting receiver, if any.
func (m *Mailbox) deliver(msg any) {
	m.queue = append(m.queue, msg)
	if len(m.waiters) == 0 {
		return
	}
	p := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.k.step(p)
}

// Recv blocks the calling process until a message is available, then
// removes and returns the oldest message.
func (m *Mailbox) Recv(p *Process) any {
	for len(m.queue) == 0 {
		m.waiters = append(m.waiters, p)
		p.yieldToKernel()
		p.waitResume()
	}
	return m.pop()
}

// TryRecv removes and returns the oldest message if one is queued. It never
// blocks; ok reports whether a message was returned.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	return m.pop(), true
}

// Drain removes and returns all currently queued messages. It never blocks.
func (m *Mailbox) Drain() []any {
	out := m.queue
	m.queue = nil
	return out
}

// Snapshot returns a copy of the queued messages without removing them.
func (m *Mailbox) Snapshot() []any {
	out := make([]any, len(m.queue))
	copy(out, m.queue)
	return out
}

// Peek returns the oldest queued message without removing it.
func (m *Mailbox) Peek() (msg any, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	return m.queue[0], true
}

func (m *Mailbox) pop() any {
	msg := m.queue[0]
	m.queue[0] = nil
	m.queue = m.queue[1:]
	if len(m.queue) == 0 {
		m.queue = nil // release the backing array once drained
	}
	return msg
}
