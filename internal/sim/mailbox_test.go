package sim

import "testing"

// The retransmission machinery in internal/flood leans on the non-blocking
// mailbox operations; these tests pin down their edge cases.

func TestMailboxEmptyNonBlockingOps(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	m := NewMailbox(k, "empty")
	if msg, ok := m.TryRecv(); ok || msg != nil {
		t.Errorf("TryRecv on empty box = (%v, %v), want (nil, false)", msg, ok)
	}
	if msg, ok := m.Peek(); ok || msg != nil {
		t.Errorf("Peek on empty box = (%v, %v), want (nil, false)", msg, ok)
	}
	if got := m.Drain(); got != nil {
		t.Errorf("Drain on empty box = %v, want nil", got)
	}
	if got := m.Snapshot(); len(got) != 0 {
		t.Errorf("Snapshot on empty box = %v, want empty", got)
	}
	if m.Len() != 0 {
		t.Errorf("Len on empty box = %d", m.Len())
	}
}

func TestMailboxDrainOrderingUnderSameTimeDeliveries(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	m := NewMailbox(k, "ties")
	// Three messages delivered at the same virtual time: FIFO must follow
	// send order (the kernel's (time, seq) tie-break).
	m.Send("a", 5)
	m.Send("b", 5)
	m.Send("c", 5)
	// And one earlier message sent last.
	m.Send("first", 1)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := m.Drain()
	want := []string{"first", "a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Drain returned %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Drain[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if msg, ok := m.TryRecv(); ok {
		t.Errorf("TryRecv after Drain returned %v", msg)
	}
}

func TestMailboxPeekDoesNotConsume(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	m := NewMailbox(k, "peek")
	m.Send(42, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if msg, ok := m.Peek(); !ok || msg != 42 {
			t.Fatalf("Peek #%d = (%v, %v), want (42, true)", i, msg, ok)
		}
	}
	if m.Len() != 1 {
		t.Errorf("Len after Peek = %d, want 1", m.Len())
	}
	if msg, ok := m.TryRecv(); !ok || msg != 42 {
		t.Errorf("TryRecv = (%v, %v), want (42, true)", msg, ok)
	}
}

func TestTimerStopAndFire(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fired := 0
	tm := k.After(10, func() { fired++ })
	stopped := k.After(5, func() { t.Error("stopped timer fired") })
	if !stopped.Stop() {
		t.Error("Stop before firing returned false")
	}
	if stopped.Stop() {
		t.Error("second Stop returned true")
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("live timer fired %d times, want 1", fired)
	}
	if !tm.Fired() {
		t.Error("Fired() false after firing")
	}
	if tm.Stop() {
		t.Error("Stop after firing returned true")
	}
}
