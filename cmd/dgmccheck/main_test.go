package main

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

// TestExhaustiveRing4Clean is the CI gate from the issue: a 4-switch ring
// with two concurrent joins explores to quiescence with zero invariant
// violations.
func TestExhaustiveRing4Clean(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "ring", "-n", "4", "-scenario", "join@0,join@2", "-mode", "exhaustive"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no invariant violations: every reachable interleaving converges") {
		t.Fatalf("missing exhaustive verdict:\n%s", out.String())
	}
}

// TestMutationFoundAndReplayable: the seeded timestamp-comparison bug is
// caught, the reported schedule is minimal (<= 10 steps), and the printed
// token reproduces the same violation through the -replay path.
func TestMutationFoundAndReplayable(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "ring", "-n", "4", "-scenario", "join@0,join@2", "-mutate", "accept-stale"}, &out)
	if !errors.Is(err, errViolation) {
		t.Fatalf("want errViolation, got %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "VIOLATION") {
		t.Fatalf("no violation report:\n%s", text)
	}
	m := regexp.MustCompile(`schedule \((\d+) steps\)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no schedule line:\n%s", text)
	}
	if len(m[1]) > 2 || (len(m[1]) == 2 && m[1] > "10") {
		t.Fatalf("counterexample not minimal: %s steps\n%s", m[1], text)
	}
	tok := regexp.MustCompile(`dgmc-sched-v1:[A-Za-z0-9_-]+`).FindString(text)
	if tok == "" {
		t.Fatalf("no replay token:\n%s", text)
	}

	var replayOut strings.Builder
	err = run([]string{"-replay", tok}, &replayOut)
	if !errors.Is(err, errViolation) {
		t.Fatalf("replay: want errViolation, got %v\n%s", err, replayOut.String())
	}
	if !strings.Contains(replayOut.String(), "VIOLATION reproduced") {
		t.Fatalf("replay did not reproduce:\n%s", replayOut.String())
	}
	// Both runs must report the same invariant failure.
	extract := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "stamps diverge") || strings.Contains(line, "diverge") {
				return strings.TrimSpace(line)
			}
		}
		return ""
	}
	if d1, d2 := extract(text), extract(replayOut.String()); d1 == "" || d1 != d2 {
		t.Fatalf("violation mismatch:\n search: %q\n replay: %q", d1, d2)
	}
}

// TestWalkMode: seeded random walks run clean on a fault-free scenario.
func TestWalkMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "line", "-n", "3", "-scenario", "join@0,join@2",
		"-mode", "walk", "-walks", "64", "-seed", "3"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no invariant violations in 64 sampled schedules") {
		t.Fatalf("missing walk verdict:\n%s", out.String())
	}
}

// TestLossyWalk: drop/dup budgets with resync hold the lossy quiescent
// standard across sampled schedules.
func TestLossyWalk(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "line", "-n", "3", "-scenario", "join@0,join@2",
		"-mode", "walk", "-walks", "64", "-seed", "5", "-resync", "-drops", "1", "-dups", "1"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

// TestSplitHealCrashGate is the model-checker CI gate from the issue: on a
// 4-switch line, a partition/heal cycle followed by a crash and cold
// restart of an endpoint, exhaustively interleaved with a join — zero
// violations in every reachable schedule.
func TestSplitHealCrashGate(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "line", "-n", "4", "-resync",
		"-scenario", "join@0,split@0.1|2.3,heal,crash@3,restart@3"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no invariant violations: every reachable interleaving converges") {
		t.Fatalf("missing exhaustive verdict:\n%s", out.String())
	}
}

// TestFaultDSL covers the fault-lane verbs: parse errors, the resync
// requirement, and lane-level validation surfacing through the CLI.
func TestFaultDSL(t *testing.T) {
	for _, bad := range []string{
		"join@0,split@0.x|2.3,heal", // bad switch in a group
		"join@0,crash@x",            // bad crash target
		"join@0,restart@y",          // bad restart target
	} {
		var out strings.Builder
		if err := run([]string{"-topo", "line", "-n", "4", "-resync", "-scenario", bad}, &out); err == nil || errors.Is(err, errViolation) {
			t.Errorf("scenario %q: want parse error, got %v", bad, err)
		}
	}
	for _, bad := range []string{
		"join@0,split@0.1|2.3,heal",          // faults without -resync (flag omitted below)
		"join@0,heal",                        // heal without a split
		"join@0,crash@1",                     // lane ends with a dead switch
		"join@0,split@0.1|2.3,crash@3,heal",  // crash during a split
		"join@0,split@0.1|2.3,split@0|1.2.3", // nested split
	} {
		args := []string{"-topo", "line", "-n", "4", "-scenario", bad}
		if bad != "join@0,split@0.1|2.3,heal" {
			args = append(args, "-resync")
		}
		var out strings.Builder
		if err := run(args, &out); err == nil || errors.Is(err, errViolation) {
			t.Errorf("scenario %q: want lane validation error, got %v", bad, err)
		}
	}
}

// TestScenarioDSL covers the event grammar, including link events and
// connection suffixes.
func TestScenarioDSL(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "ring", "-n", "4", "-mode", "walk", "-walks", "16", "-seed", "9",
		"-scenario", "join@0/2,join@1/2,fail@2-3,restore@2-3"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	for _, bad := range []string{
		"", "jump@0", "join@x", "fail@2", "fail@a-b", "join@0/0", "join@0/x",
	} {
		if err := run([]string{"-scenario", bad}, &out); err == nil || errors.Is(err, errViolation) {
			t.Errorf("scenario %q: want parse error, got %v", bad, err)
		}
	}
}

// TestBadFlags covers flag validation paths.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "torus"},
		{"-mode", "dfs"},
		{"-mutate", "off-by-one"},
		{"-alg", "magic"},
		{"-topo", "ring", "-n", "2"},
		{"-drops", "1"}, // drops without -resync
		{"-replay", "dgmc-sched-v1:zzz"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// gateArgs is the guided-search CI gate scenario: a 6-switch ring with a
// join/leave pair at switch 0, joins at 1 and 3, and a 3|3 split/heal —
// far beyond what exhaustive search can drain within a CI state budget.
func gateArgs(extra ...string) []string {
	args := []string{"-topo", "ring", "-n", "6", "-resync",
		"-scenario", "join@0,leave@0,join@1,join@3,split@0.1.2|3.4.5,heal"}
	return append(args, extra...)
}

// TestGuidedGateClean: guided mode runs the gate scenario mutation-free
// within its budget, prints the coverage map, and reports no violation.
func TestGuidedGateClean(t *testing.T) {
	var out strings.Builder
	err := run(gateArgs("-guided"), &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "mode guided") || !strings.Contains(text, "coverage:") {
		t.Fatalf("missing guided coverage report:\n%s", text)
	}
	if !strings.Contains(text, "fault depth 2/2") {
		t.Fatalf("guided search did not complete the fault lane:\n%s", text)
	}
}

// TestGuidedGateCatchesCorpus: every seeded mutation is caught by guided
// mode on the gate scenario, and each printed v2 token reproduces the
// same violation through -replay.
func TestGuidedGateCatchesCorpus(t *testing.T) {
	for _, mu := range []string{"accept-stale", "ignore-event-order", "uncapped-pseudo-proposal"} {
		t.Run(mu, func(t *testing.T) {
			var out strings.Builder
			err := run(gateArgs("-guided", "-budget", "200000", "-mutate", mu), &out)
			if !errors.Is(err, errViolation) {
				t.Fatalf("want errViolation, got %v\n%s", err, out.String())
			}
			tok := regexp.MustCompile(`dgmc-sched-v2:[A-Za-z0-9_-]+`).FindString(out.String())
			if tok == "" {
				t.Fatalf("no v2 replay token:\n%s", out.String())
			}
			var replayOut strings.Builder
			if err := run([]string{"-replay", tok}, &replayOut); !errors.Is(err, errViolation) {
				t.Fatalf("replay: want errViolation, got %v\n%s", err, replayOut.String())
			}
		})
	}
}

// TestBackwardSuspectReports: backward mode harvests, minimizes, and
// prints suspect reports with replayable prefix tokens on the clean gate.
func TestBackwardSuspectReports(t *testing.T) {
	var out strings.Builder
	err := run(gateArgs("-suspect", "all", "-budget", "60000"), &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "mode backward") || !strings.Contains(text, "suspects:") {
		t.Fatalf("missing suspect report:\n%s", text)
	}
	tok := regexp.MustCompile(`dgmc-sched-v2:[A-Za-z0-9_-]+`).FindString(text)
	if tok == "" {
		t.Fatalf("no suspect prefix token:\n%s", text)
	}
	// A suspect prefix is a near-violation, not a violation: replaying it
	// (with deterministic completion) must come up clean.
	var replayOut strings.Builder
	if err := run([]string{"-replay", tok}, &replayOut); err != nil {
		t.Fatalf("suspect prefix replay: %v\n%s", err, replayOut.String())
	}
}

// TestGuidedFlagValidation covers the new flag surface: suspect-kind
// parsing, mode conflicts, and the mutation registry wiring.
func TestGuidedFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-suspect", "no-such-kind"},
		{"-guided", "-mode", "walk"},
		{"-suspect", "all", "-mode", "walk"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil || errors.Is(err, errViolation) {
			t.Errorf("args %v: want flag error, got %v", args, err)
		}
	}
	// -mode backward without -suspect defaults to all kinds.
	var out strings.Builder
	if err := run(gateArgs("-mode", "backward", "-budget", "20000"), &out); err != nil {
		t.Fatalf("-mode backward: %v\n%s", err, out.String())
	}
}
