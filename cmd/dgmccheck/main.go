// Command dgmccheck model-checks the D-GMC implementation itself: it
// drives the production core.Machine through every (bounded) interleaving
// of LSA deliveries, local events, network faults, and resync timer
// firings, checking invariants after every transition and at every
// quiescent state (see internal/explore). Where dgmcmodel checks an
// abstracted restatement of the protocol, dgmccheck checks the shipping
// code.
//
//	dgmccheck -topo ring -n 4 -scenario join@0,join@2
//	dgmccheck -topo line -n 3 -mode walk -walks 500 -seed 1 -resync -drops 1
//	dgmccheck -topo line -n 4 -resync -scenario join@0,split@0.1|2.3,heal,crash@3,restart@3
//	dgmccheck -topo ring -n 6 -resync -guided -budget 200000 \
//	    -scenario join@0,leave@0,join@1,join@3,split@0.1.2|3.4.5,heal
//	dgmccheck -topo ring -n 6 -resync -suspect all -scenario join@0,join@3,split@0.1.2|3.4.5,heal
//	dgmccheck -mutate accept-stale            # seeded bug: must report a violation
//	dgmccheck -replay dgmc-sched-v1:...       # re-execute a counterexample token
//
// On a violation it prints the minimized schedule, a replay token, and the
// counterexample trace, then exits 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/explore"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmccheck:", err)
		os.Exit(1)
	}
}

var errViolation = errors.New("invariant violation found")

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgmccheck", flag.ContinueOnError)
	fs.SetOutput(w)
	topoName := fs.String("topo", "ring", "topology: ring, line, or full")
	n := fs.Int("n", 4, "number of switches")
	algName := fs.String("alg", "sph", "topology algorithm: sph, kmb, spt, cbt, or incremental")
	scenario := fs.String("scenario", "join@0,join@2",
		"comma-separated events: join@S, leave@S, fail@A-B, restore@A-B (append /C for a connection other than 1); "+
			"fault lane: split@0.1|2.3 (groups of dot-separated switches), heal, crash@S, restart@S (require -resync)")
	mode := fs.String("mode", "exhaustive", "search mode: exhaustive (BFS), walk (seeded random schedules), guided (best-first with drain probes), or backward (suspect-driven)")
	depth := fs.Int("depth", 0, "exhaustive: max schedule depth (0 = unbounded)")
	maxStates := fs.Int("max-states", 0, "exhaustive: max distinct states (0 = default 2000000)")
	walks := fs.Int("walks", 256, "walk: number of random schedules")
	seed := fs.Int64("seed", 1, "walk: RNG seed")
	resync := fs.Bool("resync", false, "enable gap recovery (timer firings become schedule choices)")
	resyncRounds := fs.Int("resync-rounds", 2, "resync round budget per gap")
	drops := fs.Int("drops", 0, "message-drop budget per schedule (requires -resync)")
	dups := fs.Int("dups", 0, "message-duplication budget per schedule")
	guided := fs.Bool("guided", false, "shorthand for -mode guided")
	suspect := fs.String("suspect", "", "backward search: suspect kinds to chase (comma list or \"all\"); implies -mode backward")
	budget := fs.Int("budget", 0, "guided/backward: transition+probe-step budget (0 = default 200000)")
	mutate := fs.String("mutate", "none", "seed a known bug: "+strings.Join(mutationNames(), ", "))
	replay := fs.String("replay", "", "replay a counterexample token instead of searching")
	verbose := fs.Bool("v", false, "print the full counterexample trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replay != "" {
		return runReplay(w, *replay, *verbose)
	}

	g, err := buildTopo(*topoName, *n)
	if err != nil {
		return err
	}
	alg, err := route.ByName(*algName)
	if err != nil {
		return err
	}
	mutation, err := core.ParseMutation(*mutate)
	if err != nil {
		return fmt.Errorf("%w (want one of %s)", err, strings.Join(mutationNames(), ", "))
	}
	scn, err := parseScenario(*scenario, g)
	if err != nil {
		return err
	}
	cfg := explore.Config{
		Graph:           g,
		Algorithm:       alg,
		Resync:          *resync,
		ResyncMaxRounds: *resyncRounds,
		MaxDrops:        *drops,
		MaxDups:         *dups,
		Mutation:        mutation,
	}
	opt := explore.Options{MaxDepth: *depth, MaxStates: *maxStates, Walks: *walks, Seed: *seed, Budget: *budget}

	searchMode := *mode
	if *guided {
		if searchMode != "exhaustive" && searchMode != "guided" {
			return fmt.Errorf("-guided conflicts with -mode %s", searchMode)
		}
		searchMode = "guided"
	}
	if *suspect != "" {
		if searchMode != "exhaustive" && searchMode != "guided" && searchMode != "backward" {
			return fmt.Errorf("-suspect conflicts with -mode %s", searchMode)
		}
		kinds, err := explore.ParseSuspectKinds(*suspect)
		if err != nil {
			return err
		}
		opt.SuspectKinds = kinds
		searchMode = "backward"
	} else if searchMode == "backward" {
		opt.SuspectKinds = explore.AllSuspectKinds()
	}

	fmt.Fprintf(w, "checking %s on %s-%d (%s), mode %s\n", *scenario, *topoName, *n, alg.Name(), searchMode)
	start := time.Now()
	var res *explore.Result
	switch searchMode {
	case "exhaustive":
		res, err = explore.Exhaustive(cfg, scn, opt)
	case "walk":
		res, err = explore.RandomWalk(cfg, scn, opt)
	case "guided":
		res, err = explore.Guided(cfg, scn, opt)
	case "backward":
		res, err = explore.Backward(cfg, scn, opt)
	default:
		return fmt.Errorf("unknown mode %q (want exhaustive, walk, guided, or backward)", *mode)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if v := res.Violation; v != nil {
		// BFS counterexamples are minimal-length already; shrinking still
		// lowers choices toward the canonical schedule, and is what makes
		// walk-mode counterexamples readable at all.
		shrunk := explore.Shrink(cfg, scn, v.Schedule)
		if _, sv, rerr := explore.Replay(cfg, scn, shrunk); rerr == nil && sv != nil {
			v = sv
		}
		fmt.Fprintf(w, "VIOLATION after %d states / %d transitions (%v):\n  %v\n",
			res.Stats.States, res.Stats.Transitions, elapsed, v.Err)
		fmt.Fprintf(w, "schedule (%d steps): %v\n", len(v.Schedule), v.Schedule)
		fmt.Fprintf(w, "replay with:\n  dgmccheck -replay %s\n", v.Token)
		printTrace(w, v.Trace, *verbose)
		return errViolation
	}

	fmt.Fprintf(w, "explored: %d states, %d transitions, %d quiescent states in %v\n",
		res.Stats.States, res.Stats.Transitions, res.Stats.Quiescent, elapsed)
	fmt.Fprintf(w, "deepest schedule: %d steps\n", res.Stats.MaxDepthSeen)
	if searchMode == "guided" || searchMode == "backward" {
		fmt.Fprintf(w, "coverage: %d stamp shapes, fault depth %d/%d, %d drain probes (%d probe steps)\n",
			len(res.Stats.Coverage.StampShapes), res.Stats.Coverage.FaultDepth, len(scn.Faults),
			res.Stats.Probes, res.Stats.ProbeSteps)
	}
	printSuspects(w, res)
	if res.Stats.Truncated {
		fmt.Fprintf(w, "WARNING: search truncated by depth/state/budget bounds; absence of violations is not exhaustive\n")
	} else if searchMode == "exhaustive" {
		fmt.Fprintf(w, "no invariant violations: every reachable interleaving converges\n")
	} else if searchMode == "walk" {
		fmt.Fprintf(w, "no invariant violations in %d sampled schedules\n", *walks)
	} else {
		fmt.Fprintf(w, "no invariant violations found by %s search\n", searchMode)
	}
	return nil
}

// printSuspects renders backward-search suspect reports: minimized
// near-violation states that never escalated into a real violation, each
// with a replayable prefix token.
func printSuspects(w io.Writer, res *explore.Result) {
	if len(res.Suspects) == 0 {
		return
	}
	fmt.Fprintf(w, "suspects: %d distinct harvested, %d minimized and explored:\n",
		res.Stats.SuspectsFound, len(res.Suspects))
	const maxShown = 8
	for i, rep := range res.Suspects {
		if i >= maxShown {
			fmt.Fprintf(w, "  ... %d more\n", len(res.Suspects)-maxShown)
			break
		}
		fmt.Fprintf(w, "  [score %3d, %2d steps] %s\n", rep.Score, len(rep.Schedule), strings.Join(rep.Kinds, "+"))
		fmt.Fprintf(w, "    reach with: dgmccheck -replay %s\n", rep.Token)
	}
}

func mutationNames() []string {
	var names []string
	for _, mu := range core.Mutations() {
		names = append(names, mu.String())
	}
	return names
}

func runReplay(w io.Writer, token string, verbose bool) error {
	cfg, scn, sched, err := explore.DecodeToken(token)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replaying %d-step schedule on %d switches (%s)\n",
		len(sched), cfg.Graph.NumSwitches(), cfg.Algorithm.Name())
	_, v, err := explore.Replay(cfg, scn, sched)
	if err != nil {
		return err
	}
	if v == nil {
		fmt.Fprintf(w, "schedule completed with no invariant violation\n")
		return nil
	}
	fmt.Fprintf(w, "VIOLATION reproduced:\n  %v\n", v.Err)
	printTrace(w, v.Trace, verbose)
	return errViolation
}

func printTrace(w io.Writer, trace []string, verbose bool) {
	const headLines = 30
	fmt.Fprintf(w, "trace (%d lines):\n", len(trace))
	for i, line := range trace {
		if !verbose && i >= headLines {
			fmt.Fprintf(w, "  ... %d more lines (-v for the full trace)\n", len(trace)-headLines)
			break
		}
		fmt.Fprintf(w, "  %s\n", line)
	}
}

func buildTopo(name string, n int) (*topo.Graph, error) {
	const d = 5 * time.Microsecond
	switch name {
	case "ring":
		return topo.Ring(n, d)
	case "line":
		return topo.Line(n, d)
	case "full":
		return topo.Full(n, d)
	default:
		return nil, fmt.Errorf("unknown topology %q (want ring, line, or full)", name)
	}
}

// parseScenario parses the event DSL: comma-separated join@S, leave@S,
// fail@A-B, restore@A-B, each optionally suffixed /C to address connection
// C (default 1). Link events are detected by their A endpoint. Fault-lane
// operations ride in the same list but keep program order among themselves:
// split@0.1|2.3 (groups separated by '|', members by '.'), heal, crash@S,
// restart@S.
func parseScenario(s string, g *topo.Graph) (explore.Scenario, error) {
	var scn explore.Scenario
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if op, ok, err := parseFaultOp(part); err != nil {
			return scn, err
		} else if ok {
			scn.Faults = append(scn.Faults, op)
			continue
		}
		spec := part
		conn := lsa.ConnID(1)
		if body, connStr, ok := strings.Cut(part, "/"); ok {
			c, err := strconv.ParseUint(connStr, 10, 32)
			if err != nil || c == 0 {
				return scn, fmt.Errorf("bad connection in %q", part)
			}
			conn = lsa.ConnID(c)
			spec = body
		}
		verb, arg, ok := strings.Cut(spec, "@")
		if !ok {
			return scn, fmt.Errorf("bad event %q (want verb@arg)", part)
		}
		switch verb {
		case "join", "leave":
			sw, err := strconv.Atoi(arg)
			if err != nil {
				return scn, fmt.Errorf("bad switch in %q", part)
			}
			ev := core.LocalEvent{Conn: conn, Kind: lsa.Leave}
			if verb == "join" {
				ev.Kind = lsa.Join
				ev.Role = mctree.SenderReceiver
			}
			scn.Injects = append(scn.Injects, explore.Inject{Switch: topo.SwitchID(sw), Event: ev})
		case "fail", "restore":
			aStr, bStr, ok := strings.Cut(arg, "-")
			if !ok {
				return scn, fmt.Errorf("bad link in %q (want %s@A-B)", part, verb)
			}
			a, errA := strconv.Atoi(aStr)
			b, errB := strconv.Atoi(bStr)
			if errA != nil || errB != nil {
				return scn, fmt.Errorf("bad link in %q", part)
			}
			scn.Injects = append(scn.Injects, explore.Inject{
				Switch: topo.SwitchID(a),
				Event: core.LocalEvent{Kind: lsa.Link, Link: lsa.LinkChange{
					A: topo.SwitchID(a), B: topo.SwitchID(b), Down: verb == "fail",
				}},
			})
		default:
			return scn, fmt.Errorf("unknown verb %q in %q", verb, part)
		}
	}
	if len(scn.Injects) == 0 && len(scn.Faults) == 0 {
		return scn, errors.New("empty scenario")
	}
	_ = g // validated again by explore.NewWorld
	return scn, nil
}

// parseFaultOp recognizes the fault-lane verbs of the scenario DSL. The
// boolean reports whether part was a fault verb at all; lane-level
// consistency (alternating split/heal, live crash targets, a whole network
// at the end) is validated by explore.NewWorld.
func parseFaultOp(part string) (explore.FaultOp, bool, error) {
	if part == "heal" {
		return explore.FaultOp{Kind: explore.FaultHeal}, true, nil
	}
	verb, arg, ok := strings.Cut(part, "@")
	if !ok {
		return explore.FaultOp{}, false, nil
	}
	switch verb {
	case "split":
		var groups [][]topo.SwitchID
		for _, gs := range strings.Split(arg, "|") {
			var grp []topo.SwitchID
			for _, field := range strings.Split(gs, ".") {
				sw, err := strconv.Atoi(field)
				if err != nil {
					return explore.FaultOp{}, true, fmt.Errorf("bad switch %q in %q", field, part)
				}
				grp = append(grp, topo.SwitchID(sw))
			}
			groups = append(groups, grp)
		}
		return explore.FaultOp{Kind: explore.FaultSplit, Groups: groups}, true, nil
	case "crash", "restart":
		sw, err := strconv.Atoi(arg)
		if err != nil {
			return explore.FaultOp{}, true, fmt.Errorf("bad switch in %q", part)
		}
		kind := explore.FaultCrash
		if verb == "restart" {
			kind = explore.FaultRestart
		}
		return explore.FaultOp{Kind: kind, Switch: topo.SwitchID(sw)}, true, nil
	default:
		return explore.FaultOp{}, false, nil
	}
}
