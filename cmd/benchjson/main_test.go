package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dgmc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMachineStep 	  500000	      1260 ns/op
BenchmarkFrameEncode-8 	 3000000	       402.2 ns/op	       434.0 frame-bytes
BenchmarkTopoCompute/n50-8 	   10000	    182935 ns/op
PASS
ok  	dgmc	0.073s
`

func TestParseAndEncode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-label", "pr3"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Label != "pr3" || rep.Failed {
		t.Errorf("label/failed = %q/%v", rep.Label, rep.Failed)
	}
	if rep.Context["goos"] != "linux" || rep.Context["cpu"] == "" {
		t.Errorf("context = %v", rep.Context)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "BenchmarkMachineStep" || rep.Benchmarks[0].Iterations != 500000 {
		t.Errorf("bench 0 = %+v", rep.Benchmarks[0])
	}
	fe := rep.Benchmarks[1]
	if fe.Name != "BenchmarkFrameEncode" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", fe.Name)
	}
	if fe.Metrics["ns/op"] != 402.2 || fe.Metrics["frame-bytes"] != 434.0 {
		t.Errorf("metrics = %v", fe.Metrics)
	}
	if rep.Benchmarks[2].Name != "BenchmarkTopoCompute/n50" {
		t.Errorf("sub-benchmark name mangled: %q", rep.Benchmarks[2].Name)
	}
	if rep.Benchmarks[2].Package != "dgmc" {
		t.Errorf("package = %q", rep.Benchmarks[2].Package)
	}
}

func TestFailDetection(t *testing.T) {
	in := "BenchmarkX 10 5 ns/op\nFAIL\tdgmc\t0.1s\n"
	var out strings.Builder
	if err := run(nil, strings.NewReader(in), &out); err == nil {
		t.Fatal("want error on FAIL input")
	}
	if !strings.Contains(out.String(), `"failed": true`) {
		t.Errorf("failed flag missing:\n%s", out.String())
	}
}

func TestRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"",                       // no benchmarks at all
		"BenchmarkX\n",           // no iteration count
		"BenchmarkX ten 5 ns/op", // bad count
		"BenchmarkX 10 5\n",      // dangling value without unit
		"BenchmarkX 10 five ns/op",
	} {
		var out strings.Builder
		if err := run(nil, strings.NewReader(in), &out); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}
