// Command benchjson converts `go test -bench` output into JSON so
// benchmark results can be archived and diffed across PRs:
//
//	go test -bench . -benchmem ./... | benchjson -label pr3 > BENCH_pr3.json
//
// Each benchmark line becomes one record with its iteration count and every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units);
// the goos/goarch/pkg/cpu context lines are carried as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flag"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full JSON document.
type Report struct {
	Label   string            `json:"label,omitempty"`
	Context map[string]string `json:"context"`
	// Notes carries free-form key=value annotations from the -notes flag —
	// e.g. a pre-optimization baseline figure the archived run is gated
	// against, so the comparison lives next to the numbers.
	Notes      map[string]string `json:"notes,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	Failed     bool              `json:"failed,omitempty"`
}

func run(args []string, r io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(w)
	label := fs.String("label", "", "label recorded in the output (e.g. pr3)")
	notes := fs.String("notes", "", "comma-separated key=value annotations recorded in the output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := parse(r)
	if err != nil {
		return err
	}
	rep.Label = *label
	if *notes != "" {
		rep.Notes = map[string]string{}
		for _, kv := range strings.Split(*notes, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("malformed -notes entry %q, want key=value", kv)
			}
			rep.Notes[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Failed {
		return fmt.Errorf("input contains a FAIL line")
	}
	return nil
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}, Benchmarks: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rep.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "pkg:"):
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			res.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, *res)
		case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
			rep.Failed = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses "BenchmarkName-8  1000  123 ns/op  7 B/op ...":
// name, iteration count, then value/unit pairs.
func parseBenchLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("malformed benchmark line %q", line)
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix BenchmarkFoo-8 (but keep sub-bench
		// names like BenchmarkFoo/n50-8 intact up to the final dash).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count in %q", line)
	}
	res := &Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad metric value %q in %q", rest[i], line)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, nil
}
