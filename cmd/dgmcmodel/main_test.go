package main

import (
	"strings"
	"testing"
)

func TestParseScenario(t *testing.T) {
	events, err := parseScenario("join@0, leave@0,join@2")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Switch != 0 || events[2].Switch != 2 {
		t.Errorf("events = %v", events)
	}
	for _, bad := range []string{"", "join", "join@x", "frob@1", "join@"} {
		if _, err := parseScenario(bad); err == nil {
			t.Errorf("parseScenario(%q) succeeded", bad)
		}
	}
}

func TestRunConvergentScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "2", "-scenario", "join@0,join@1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "all convergent") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "9"}, &sb); err == nil {
		t.Error("oversized model accepted")
	}
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-n", "3", "-scenario", "join@0,join@1,join@2", "-max-states", "5"}, &sb); err == nil {
		t.Error("state limit not enforced")
	}
}
