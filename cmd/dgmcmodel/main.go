// Command dgmcmodel exhaustively model-checks the D-GMC protocol on a
// small scenario: it explores every interleaving of event handling,
// topology-computation completion, and LSA delivery, and verifies that
// every reachable terminal state is convergent. It stands in for the
// correctness proofs the paper omits (§3.6).
//
//	dgmcmodel -n 3 -scenario join@0,join@1,leave@1
//	dgmcmodel -n 4 -scenario join@0,join@1,join@2 -max-states 50000000
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcmodel:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgmcmodel", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of switches (2-4)")
	scenario := fs.String("scenario", "join@0,join@1", "comma-separated events: join@SWITCH or leave@SWITCH")
	maxStates := fs.Int("max-states", 0, "abort after this many states (0 = default limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	events, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	c := &model.Checker{N: *n, Scenario: events, MaxStates: *maxStates}
	start := time.Now()
	res, err := c.Check()
	elapsed := time.Since(start)
	var v *model.Violation
	if errors.As(err, &v) {
		fmt.Fprintf(w, "VIOLATION after %d states (%v):\n%v\n", res.StatesExplored, elapsed.Round(time.Millisecond), v)
		return errors.New("protocol violation found")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario: %s on %d switches\n", *scenario, *n)
	fmt.Fprintf(w, "explored: %d states in %v\n", res.StatesExplored, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "terminal: %d distinct quiescent states, all convergent\n", res.TerminalStates)
	fmt.Fprintf(w, "peak in-flight LSAs: %d\n", res.MaxInFlight)
	return nil
}

func parseScenario(s string) ([]model.Event, error) {
	var out []model.Event
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		verb, swStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad event %q (want join@N or leave@N)", part)
		}
		sw, err := strconv.Atoi(swStr)
		if err != nil {
			return nil, fmt.Errorf("bad switch in %q", part)
		}
		switch verb {
		case "join":
			out = append(out, model.Event{Switch: sw, Kind: model.Join})
		case "leave":
			out = append(out, model.Event{Switch: sw, Kind: model.Leave})
		default:
			return nil, fmt.Errorf("unknown verb %q", verb)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("empty scenario")
	}
	return out, nil
}
