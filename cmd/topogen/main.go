// Command topogen generates and inspects the random network topologies
// used by the simulation study.
//
//	topogen -n 40 -seed 7            # print stats
//	topogen -n 40 -seed 7 -dot       # emit Graphviz DOT
//	topogen -n 40 -model gnm -stats  # uniform random graph
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dgmc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	n := fs.Int("n", 40, "number of switches")
	seed := fs.Int64("seed", 1, "random seed")
	model := fs.String("model", "waxman", "graph model: waxman or gnm")
	degree := fs.Float64("degree", 3.5, "target average degree")
	perHop := fs.Duration("perhop", 10*time.Microsecond, "per-hop LSA time used for the Tf estimate")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := topo.DefaultGenConfig(*n, *seed)
	cfg.AvgDegree = *degree
	var g *topo.Graph
	var err error
	switch *model {
	case "waxman":
		g, err = topo.Waxman(cfg)
	case "gnm":
		g, err = topo.GNM(cfg)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	if *dot {
		return g.WriteDOT(w, fmt.Sprintf("%s-%d-%d", *model, *n, *seed), nil)
	}

	hd, err := g.HopDiameter()
	if err != nil {
		return err
	}
	fd, err := g.FloodDiameter()
	if err != nil {
		return err
	}
	minDeg, maxDeg, sumDeg := g.NumSwitches(), 0, 0
	for _, s := range g.Switches() {
		d := g.Degree(s)
		sumDeg += d
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Fprintf(w, "model:          %s (seed %d)\n", *model, *seed)
	fmt.Fprintf(w, "switches:       %d\n", g.NumSwitches())
	fmt.Fprintf(w, "links:          %d\n", g.NumLinks())
	fmt.Fprintf(w, "degree:         min %d / avg %.2f / max %d\n",
		minDeg, float64(sumDeg)/float64(g.NumSwitches()), maxDeg)
	fmt.Fprintf(w, "hop diameter:   %d\n", hd)
	fmt.Fprintf(w, "delay diameter: %v\n", fd)
	// Tf including per-hop forwarding costs.
	tf := fd + time.Duration(hd)**perHop
	fmt.Fprintf(w, "Tf estimate:    %v (per-hop %v)\n", tf, *perHop)
	fmt.Fprintf(w, "connected:      %v\n", g.Connected())
	return nil
}
