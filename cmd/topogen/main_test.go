package main

import (
	"strings"
	"testing"
)

func TestStatsOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "20", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"switches:", "links:", "hop diameter:", "connected:      true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "10", "-dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "graph ") {
		t.Errorf("not DOT output:\n%s", sb.String())
	}
}

func TestGNMModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "15", "-model", "gnm"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "model:          gnm") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "bogus"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
	if err := run([]string{"-n", "1"}, &sb); err == nil {
		t.Error("degenerate size accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}
