package main

import (
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Errorf("sizes = %v", got)
	}
	for _, bad := range []string{"", "x", "1", "10,-5", ",,"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) succeeded", bad)
		}
	}
}

func TestRunExperiment3Small(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "3", "-sizes", "10", "-graphs", "2", "-events", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Experiment 3") || !strings.Contains(out, "proposals/event") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "3", "-sizes", "10", "-graphs", "2", "-events", "4", "-csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "switches,proposals/event_mean") {
		t.Errorf("csv output malformed:\n%s", sb.String())
	}
}

func TestRunBaselinesAndTrees(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "baselines,trees", "-sizes", "10", "-graphs", "2", "-events", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "brute force") || !strings.Contains(out, "CBT") {
		t.Errorf("output missing sections:\n%s", out)
	}
}

func TestRunDeliverySmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "delivery", "-graphs", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Delivery sweep") || !strings.Contains(out, "ratio-settled") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sizes", "nope"}, &sb); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-experiment", "partition", "-partition", "0"}, &sb); err == nil {
		t.Error("-partition 0 accepted")
	}
	if err := run([]string{"-experiment", "partition", "-heal-after", "-3"}, &sb); err == nil {
		t.Error("negative -heal-after accepted")
	}
}

func TestRunPartitionSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-experiment", "partition", "-sizes", "10", "-graphs", "4",
		"-events", "6", "-partition", "1", "-heal-after", "10", "-crash",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Partition sweep") || !strings.Contains(out, "reconciles/cycle") {
		t.Errorf("output malformed:\n%s", out)
	}
	if !strings.Contains(out, "nodal outage") {
		t.Errorf("-crash not reflected in title:\n%s", out)
	}
}
