// Command dgmcbench regenerates every table and figure of the paper's
// evaluation section:
//
//	dgmcbench -experiment 1          # Figure 6: bursty, computation dominates
//	dgmcbench -experiment 2          # Figure 7: bursty, communication dominates
//	dgmcbench -experiment 3          # Figure 8: normal traffic
//	dgmcbench -experiment baselines  # D-GMC vs MOSPF vs brute force
//	dgmcbench -experiment trees      # CBT vs Steiner tree quality
//	dgmcbench -experiment burst      # overheads vs burst size (fixed n)
//	dgmcbench -experiment hier       # flat vs hierarchical extension
//	dgmcbench -experiment loss       # convergence under injected loss
//	dgmcbench -experiment all        # everything
//
// Use -graphs and -sizes to trade fidelity for speed, and -csv for
// machine-readable output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dgmc/internal/exp"
	"dgmc/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgmcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "1, 2, 3, baselines, trees, burst, hier, loss, or all")
	graphs := fs.Int("graphs", 20, "random graphs per network size")
	sizes := fs.String("sizes", "20,40,60,80,100", "comma-separated network sizes")
	events := fs.Int("events", 10, "membership events per run")
	seed := fs.Int64("seed", 1, "base seed for the sweep")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	override := func(p *exp.Params) {
		p.Sizes = sz
		p.GraphsPerSize = *graphs
		p.Events = *events
		p.BaseSeed = *seed
	}
	emit := func(t *metrics.Table) error {
		if t == nil {
			return nil
		}
		if *csv {
			if err := t.WriteCSV(w); err != nil {
				return err
			}
		} else if err := t.WriteText(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	emitFigures := func(f exp.FigureSet) error {
		if err := emit(f.Proposals); err != nil {
			return err
		}
		if err := emit(f.Floodings); err != nil {
			return err
		}
		return emit(f.Convergence)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	if all || want["1"] {
		f, err := exp.Experiment1(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["2"] {
		f, err := exp.Experiment2(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["3"] {
		f, err := exp.Experiment3(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["baselines"] {
		t, err := exp.Baselines(exp.DefaultBaselineParams(), override)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["trees"] {
		t, err := exp.TreeQuality(exp.TreeQualityParams{
			Sizes:         sz,
			GraphsPerSize: *graphs,
			BaseSeed:      *seed,
		})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["burst"] {
		t, err := exp.BurstScaling(exp.BurstScalingParams{BaseSeed: *seed, RunsPerPoint: *graphs})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["hier"] {
		t, err := exp.Hierarchy(exp.HierarchyParams{BaseSeed: *seed, RunsPerPoint: *graphs / 2})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["loss"] {
		t, err := exp.Loss(exp.LossParams{BaseSeed: *seed, RunsPerPoint: *graphs / 2, Events: *events})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
