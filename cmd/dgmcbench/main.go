// Command dgmcbench regenerates every table and figure of the paper's
// evaluation section:
//
//	dgmcbench -experiment 1          # Figure 6: bursty, computation dominates
//	dgmcbench -experiment 2          # Figure 7: bursty, communication dominates
//	dgmcbench -experiment 3          # Figure 8: normal traffic
//	dgmcbench -experiment baselines  # D-GMC vs MOSPF vs brute force
//	dgmcbench -experiment trees      # CBT vs Steiner tree quality
//	dgmcbench -experiment burst      # overheads vs burst size (fixed n)
//	dgmcbench -experiment hier       # flat vs hierarchical extension
//	dgmcbench -experiment loss       # convergence under injected loss
//	dgmcbench -experiment partition  # split/heal reconciliation cost
//	dgmcbench -experiment delivery   # live data-plane delivery ratio sweep
//	dgmcbench -experiment throughput # live data-plane saturation (pkts/sec) sweep
//	dgmcbench -experiment all        # every simulator experiment above
//
// The delivery and throughput sweeps drive live goroutine clusters under
// wall-clock timing, so unlike the simulator experiments their figures vary
// slightly run to run; they are therefore opt-in rather than part of
// -experiment all, which stays byte-deterministic for a fixed -seed.
//
// Use -graphs and -sizes to trade fidelity for speed, and -csv for
// machine-readable output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/exp"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/metrics"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgmcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "1, 2, 3, baselines, trees, burst, hier, loss, partition, delivery, throughput, or all (delivery and throughput are live/timing-dependent and excluded from all)")
	graphs := fs.Int("graphs", 20, "random graphs per network size")
	sizes := fs.String("sizes", "20,40,60,80,100", "comma-separated network sizes")
	events := fs.Int("events", 10, "membership events per run")
	seed := fs.Int64("seed", 1, "base seed for the sweep")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	metricsOut := fs.String("metrics-out", "", "also export every emitted table as Prometheus gauges to this file")
	traceOut := fs.String("trace-out", "", "run one representative traced simulation and write its span trees (JSON) to this file")
	partition := fs.Int("partition", 2, "split/heal cycles per run in the partition experiment")
	healAfter := fs.Float64("heal-after", 20, "rounds each split (and nodal outage) stays open before healing (partition experiment)")
	crash := fs.Bool("crash", false, "add a nodal switch outage and recovery to every partition-experiment run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	if *partition < 1 {
		return fmt.Errorf("-partition %d: need at least one split/heal cycle", *partition)
	}
	if *healAfter <= 0 {
		return fmt.Errorf("-heal-after %g: splits must heal after a positive number of rounds", *healAfter)
	}
	override := func(p *exp.Params) {
		p.Sizes = sz
		p.GraphsPerSize = *graphs
		p.Events = *events
		p.BaseSeed = *seed
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	emit := func(t *metrics.Table) error {
		if t == nil {
			return nil
		}
		tableToGauges(reg, t)
		if *csv {
			if err := t.WriteCSV(w); err != nil {
				return err
			}
		} else if err := t.WriteText(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	emitFigures := func(f exp.FigureSet) error {
		if err := emit(f.Proposals); err != nil {
			return err
		}
		if err := emit(f.Floodings); err != nil {
			return err
		}
		return emit(f.Convergence)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	if all || want["1"] {
		f, err := exp.Experiment1(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["2"] {
		f, err := exp.Experiment2(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["3"] {
		f, err := exp.Experiment3(override)
		if err != nil {
			return err
		}
		if err := emitFigures(f); err != nil {
			return err
		}
	}
	if all || want["baselines"] {
		t, err := exp.Baselines(exp.DefaultBaselineParams(), override)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["trees"] {
		t, err := exp.TreeQuality(exp.TreeQualityParams{
			Sizes:         sz,
			GraphsPerSize: *graphs,
			BaseSeed:      *seed,
		})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["burst"] {
		t, err := exp.BurstScaling(exp.BurstScalingParams{BaseSeed: *seed, RunsPerPoint: *graphs})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["hier"] {
		t, err := exp.Hierarchy(exp.HierarchyParams{BaseSeed: *seed, RunsPerPoint: *graphs / 2})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["loss"] {
		t, err := exp.Loss(exp.LossParams{BaseSeed: *seed, RunsPerPoint: *graphs / 2, Events: *events})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if all || want["partition"] {
		t, err := exp.Partition(exp.PartitionParams{
			Sizes:           sz,
			Cycles:          *partition,
			HealAfterRounds: *healAfter,
			Crash:           *crash,
			RunsPerPoint:    *graphs / 2,
			BaseSeed:        *seed,
			Events:          *events,
		})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	// Opt-in only: live clusters under wall-clock timing, so the table is
	// not byte-deterministic and would break -experiment all's guarantee.
	if want["delivery"] {
		runs := *graphs / 4
		if runs < 1 {
			runs = 1
		}
		t, err := exp.Delivery(exp.DeliveryParams{
			RunsPerPoint: runs,
			BaseSeed:     *seed,
		})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	// Opt-in only, like delivery: wall-clock saturation measurements.
	if want["throughput"] {
		runs := *graphs / 4
		if runs < 1 {
			runs = 1
		}
		t, err := exp.Throughput(exp.ThroughputParams{RunsPerPoint: runs})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if reg != nil {
		if err := writeFile(*metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		spans, err := tracedRun(*seed)
		if err != nil {
			return err
		}
		if err := writeFile(*traceOut, spans.WriteJSON); err != nil {
			return err
		}
		st := spans.Stats()
		fmt.Fprintf(w, "spans: %d chains to %s (mean %.2f computations, %.2f floods)\n",
			st.Spans, *traceOut, st.MeanComputations, st.MeanFloods)
	}
	return nil
}

// tableToGauges exports a result table as gauge series: one series per
// (column, statistic) pair labeled with the row's x value, so a scrape of a
// bench run and a live daemon share one data model. No-op without a registry.
func tableToGauges(reg *obs.Registry, t *metrics.Table) {
	if reg == nil {
		return
	}
	base := "dgmc_bench_" + slug(t.Title)
	for _, row := range t.Rows {
		x := obs.L(slug(t.XLabel), fmt.Sprintf("%g", row.X))
		for i, cell := range row.Cells {
			if i >= len(t.Columns) {
				break
			}
			col := slug(t.Columns[i])
			mean, ci := cell.Mean, cell.CI
			reg.GaugeFunc(base+"_"+col+"_mean", func() float64 { return mean }, x)
			reg.GaugeFunc(base+"_"+col+"_ci95", func() float64 { return ci }, x)
		}
	}
}

// slug lowercases and collapses a table title or column name into a metric
// name fragment.
func slug(s string) string {
	var b strings.Builder
	lastUnder := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnder = false
		default:
			if !lastUnder {
				b.WriteByte('_')
				lastUnder = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// tracedRun executes one representative bursty simulation (20 switches,
// 8 events) with a span collector attached and returns the collected spans.
func tracedRun(seed int64) (*obs.SpanCollector, error) {
	g, err := topo.Waxman(topo.DefaultGenConfig(20, seed))
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, 10*time.Microsecond, flood.HopByHop)
	if err != nil {
		return nil, err
	}
	tf, err := net.FloodTime()
	if err != nil {
		return nil, err
	}
	round := tf + 500*time.Microsecond
	spans := obs.NewSpanCollector(0)
	d, err := core.NewDomain(k, core.Config{
		Net:         net,
		ComputeTime: 500 * time.Microsecond,
		Algorithm:   route.SPH{},
		Kinds:       map[lsa.ConnID]mctree.Kind{1: mctree.Symmetric},
		Tracer:      spans,
	})
	if err != nil {
		return nil, err
	}
	evs, err := workload.Bursty(workload.Config{
		N: 20, Events: 8, Seed: seed, Start: round, Window: round,
	})
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		if e.Join {
			d.Join(e.At, e.Switch, 1, e.Role)
		} else {
			d.Leave(e.At, e.Switch, 1)
		}
	}
	if _, err := k.Run(); err != nil {
		return nil, err
	}
	if err := d.CheckConverged(); err != nil {
		return nil, fmt.Errorf("traced run did not converge: %w", err)
	}
	return spans, nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
