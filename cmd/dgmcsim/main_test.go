package main

import (
	"strings"
	"testing"
)

func TestRunSparseSymmetric(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-events", "4", "-seed", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"network:", "event:", "converged", "computations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBurstWithTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "10", "-events", "4", "-burst", "-trace"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "flood") || !strings.Contains(out, "install") {
		t.Errorf("trace missing protocol steps:\n%s", out)
	}
}

func TestRunAllAlgorithmsAndKinds(t *testing.T) {
	for _, alg := range []string{"sph", "kmb", "spt", "incremental"} {
		for _, kind := range []string{"symmetric", "receiver-only", "asymmetric"} {
			var sb strings.Builder
			err := run([]string{"-n", "10", "-events", "3", "-algorithm", alg, "-kind", kind}, &sb)
			if err != nil {
				t.Errorf("%s/%s: %v", alg, kind, err)
			}
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad algorithm":        {"-algorithm", "bogus"},
		"bad kind":             {"-kind", "bogus"},
		"unknown flag":         {"-nonsense"},
		"bad mode":             {"-mode", "carrier-pigeon"},
		"too few switches":     {"-n", "1"},
		"no events":            {"-events", "0"},
		"negative tc":          {"-tc", "-1ms"},
		"zero perhop":          {"-perhop", "0"},
		"negative reopt":       {"-reopt", "-0.5"},
		"negative drop":        {"-drop", "-0.1", "-mode", "reliable"},
		"drop above one":       {"-drop", "1.5", "-mode", "reliable"},
		"negative dup":         {"-dup", "-0.1", "-mode", "reliable"},
		"dup above one":        {"-dup", "2", "-mode", "reliable"},
		"negative jitter":      {"-jitter", "-1ms", "-mode", "reliable"},
		"negative resync":      {"-resync", "-4", "-mode", "reliable", "-drop", "0.1"},
		"faults without mode":  {"-drop", "0.1"},
		"jitter without mode":  {"-jitter", "1ms", "-mode", "tree"},
		"resync without lossy": {"-resync", "4"},
		"resync fault-free":    {"-resync", "4", "-mode", "reliable"},
		"partition bad spec":   {"-partition", "0,1/x", "-mode", "reliable", "-resync", "4"},
		"partition one group":  {"-partition", "0,1,2", "-mode", "reliable", "-resync", "4"},
		"partition dup switch": {"-partition", "0,1/1,2", "-mode", "reliable", "-resync", "4"},
		"partition bad switch": {"-partition", "0,1/99", "-n", "8", "-mode", "reliable", "-resync", "4"},
		"partition no resync":  {"-partition", "0,1/2,3", "-mode", "reliable"},
		"partition bad mode":   {"-partition", "0,1/2,3", "-resync", "4"},
		"crash out of range":   {"-crash", "50", "-n", "8", "-mode", "reliable", "-resync", "4"},
		"crash no resync":      {"-crash", "3", "-mode", "reliable"},
		"zero heal-after":      {"-heal-after", "0", "-partition", "0,1/2,3", "-mode", "reliable", "-resync", "4"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: run(%v) accepted", name, args)
		}
	}
}

func TestRunReliableLossyWithResync(t *testing.T) {
	// The combination the validation is steering users toward must work.
	var sb strings.Builder
	err := run([]string{"-n", "12", "-events", "4", "-mode", "reliable",
		"-drop", "0.05", "-dup", "0.02", "-resync", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "transport:") {
		t.Errorf("reliable run missing transport summary:\n%s", sb.String())
	}
}

func TestRunPartitionHealConverges(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "8", "-events", "5", "-seed", "3", "-mode", "reliable",
		"-resync", "4", "-partition", "0,1,2,3/4,5,6,7", "-heal-after", "15"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault: partition(", "heal: reconciles=", "converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("partition run missing %q:\n%s", want, out)
		}
	}
}

func TestRunCrashIsolationConverges(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "8", "-events", "5", "-seed", "3", "-mode", "reliable",
		"-resync", "4", "-crash", "2", "-heal-after", "15"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault: partition(2|", "heal: reconciles=", "converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("crash run missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-events", "4", "-faillink", "-reopt", "0.1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "failing tree link") || !strings.Contains(out, "repaired topology") {
		t.Errorf("failure injection output missing:\n%s", out)
	}
}
