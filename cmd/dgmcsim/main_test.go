package main

import (
	"strings"
	"testing"
)

func TestRunSparseSymmetric(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-events", "4", "-seed", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"network:", "event:", "converged", "computations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBurstWithTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "10", "-events", "4", "-burst", "-trace"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "flood") || !strings.Contains(out, "install") {
		t.Errorf("trace missing protocol steps:\n%s", out)
	}
}

func TestRunAllAlgorithmsAndKinds(t *testing.T) {
	for _, alg := range []string{"sph", "kmb", "spt", "incremental"} {
		for _, kind := range []string{"symmetric", "receiver-only", "asymmetric"} {
			var sb strings.Builder
			err := run([]string{"-n", "10", "-events", "3", "-algorithm", alg, "-kind", kind}, &sb)
			if err != nil {
				t.Errorf("%s/%s: %v", alg, kind, err)
			}
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-algorithm", "bogus"}, &sb); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-kind", "bogus"}, &sb); err == nil {
		t.Error("bad kind accepted")
	}
	if err := run([]string{"-nonsense"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-events", "4", "-faillink", "-reopt", "0.1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "failing tree link") || !strings.Contains(out, "repaired topology") {
		t.Errorf("failure injection output missing:\n%s", out)
	}
}
