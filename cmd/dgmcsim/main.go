// Command dgmcsim runs one D-GMC simulation and prints a protocol trace and
// summary — useful for watching the protocol converge step by step.
//
//	dgmcsim -n 20 -events 8 -burst -trace
//	dgmcsim -n 50 -events 12 -algorithm kmb -kind asymmetric
//	dgmcsim -n 20 -mode reliable -drop 0.1 -resync 4
//	dgmcsim -n 8 -mode reliable -resync 4 -partition "0,1,2,3/4,5,6,7" -heal-after 20
//	dgmcsim -n 8 -mode reliable -resync 4 -crash 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/faults"
	"dgmc/internal/flood"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/sim"
	"dgmc/internal/topo"
	"dgmc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgmcsim", flag.ContinueOnError)
	n := fs.Int("n", 20, "number of switches")
	events := fs.Int("events", 6, "membership events to inject")
	seed := fs.Int64("seed", 1, "random seed")
	burst := fs.Bool("burst", false, "cluster events in one round (bursty) instead of sparse")
	algName := fs.String("algorithm", "sph", "topology algorithm: sph, kmb, spt, cbt, incremental")
	kindName := fs.String("kind", "symmetric", "MC kind: symmetric, receiver-only, asymmetric")
	tc := fs.Duration("tc", 500*time.Microsecond, "topology computation time Tc")
	perHop := fs.Duration("perhop", 10*time.Microsecond, "per-hop LSA transmission time")
	trace := fs.Bool("trace", false, "print the full protocol trace")
	traceOut := fs.String("trace-out", "", "write causal span trees (JSON) to this file")
	metricsOut := fs.String("metrics-out", "", "write run metrics (Prometheus text format) to this file")
	failLink := fs.Bool("faillink", false, "after convergence, fail a link on the MC tree and show the repair")
	reopt := fs.Float64("reopt", 0, "re-optimization threshold for link recoveries (0 = off)")
	modeName := fs.String("mode", "direct", "flooding transport: direct, hopbyhop, tree, reliable")
	drop := fs.Float64("drop", 0, "per-transmission drop probability (requires -mode reliable)")
	dup := fs.Float64("dup", 0, "per-transmission duplication probability (requires -mode reliable)")
	jitter := fs.Duration("jitter", 0, "max per-transmission delay jitter (requires -mode reliable)")
	resync := fs.Float64("resync", 0, "resync timeout in rounds (0 = off)")
	partSpec := fs.String("partition", "", `split the network mid-run into groups, e.g. "0,1/2,3" (requires -mode reliable and -resync)`)
	healAfter := fs.Float64("heal-after", 20, "rounds a -partition or -crash outage lasts before healing")
	crash := fs.Int("crash", -1, "isolate this switch mid-run, as if it crashed undetected (requires -mode reliable and -resync)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("-n %d: need at least 2 switches", *n)
	}
	if *events < 1 {
		return fmt.Errorf("-events %d: need at least one membership event", *events)
	}
	if *tc < 0 {
		return fmt.Errorf("-tc %v: computation time cannot be negative", *tc)
	}
	if *perHop <= 0 {
		return fmt.Errorf("-perhop %v: per-hop time must be positive", *perHop)
	}
	if *reopt < 0 {
		return fmt.Errorf("-reopt %g: threshold cannot be negative", *reopt)
	}
	if *drop < 0 || *drop > 1 {
		return fmt.Errorf("-drop %g: probability outside [0,1]", *drop)
	}
	if *dup < 0 || *dup > 1 {
		return fmt.Errorf("-dup %g: probability outside [0,1]", *dup)
	}
	if *jitter < 0 {
		return fmt.Errorf("-jitter %v: jitter cannot be negative", *jitter)
	}
	if *resync < 0 {
		return fmt.Errorf("-resync %g: timeout in rounds cannot be negative", *resync)
	}
	if *healAfter <= 0 {
		return fmt.Errorf("-heal-after %g: outage must last a positive number of rounds", *healAfter)
	}
	if *crash < -1 || *crash >= *n {
		return fmt.Errorf("-crash %d: switch outside [0,%d)", *crash, *n)
	}
	groups, err := parseGroups(*partSpec, *n)
	if err != nil {
		return err
	}
	outage := groups != nil || *crash >= 0
	lossy := *drop > 0 || *dup > 0 || *jitter > 0
	if (lossy || outage) && *modeName != "reliable" {
		return fmt.Errorf("-drop/-dup/-jitter/-partition/-crash inject transport faults, which only the reliable transport survives; add -mode reliable")
	}
	if *resync > 0 && !lossy && !outage {
		return fmt.Errorf("-resync %g: gap recovery only fires under loss; combine with -mode reliable and -drop/-dup/-jitter/-partition/-crash", *resync)
	}
	if outage && *resync <= 0 {
		return fmt.Errorf("-partition/-crash outages recover through gap resync; add -resync (e.g. -resync 4)")
	}
	var mode flood.Mode
	switch *modeName {
	case "direct":
		mode = flood.Direct
	case "hopbyhop":
		mode = flood.HopByHop
	case "tree":
		mode = flood.TreeBased
	case "reliable":
		mode = flood.Reliable
	default:
		return fmt.Errorf("unknown flooding mode %q", *modeName)
	}

	alg, err := route.ByName(*algName)
	if err != nil {
		return err
	}
	var kind mctree.Kind
	switch *kindName {
	case "symmetric":
		kind = mctree.Symmetric
	case "receiver-only":
		kind = mctree.ReceiverOnly
	case "asymmetric":
		kind = mctree.Asymmetric
	default:
		return fmt.Errorf("unknown MC kind %q", *kindName)
	}

	g, err := topo.Waxman(topo.DefaultGenConfig(*n, *seed))
	if err != nil {
		return err
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	// Outage windows are phrased in rounds, and a round needs the flooding
	// diameter — which needs the network, which needs the fault plan. Probe
	// Tf on a throwaway kernel to break the cycle, as the exp package does.
	var parts []faults.Partition
	if outage {
		ptf, err := probeTf(g, *perHop)
		if err != nil {
			return err
		}
		r := sim.Time(ptf + *tc)
		healSpan := sim.Time(*healAfter * float64(r))
		at := 10 * r
		if groups != nil {
			parts = append(parts, faults.Partition{Groups: groups, At: at, HealAt: at + healSpan})
			at += 2 * healSpan
		}
		if *crash >= 0 {
			// An undetected nodal outage is an isolation partition: the
			// victim's links stay up in the topology (nothing tells the
			// survivors to recompute), but no frame crosses until the heal.
			victim := topo.SwitchID(*crash)
			rest := make([]topo.SwitchID, 0, *n-1)
			for s := 0; s < *n; s++ {
				if topo.SwitchID(s) != victim {
					rest = append(rest, topo.SwitchID(s))
				}
			}
			parts = append(parts, faults.Partition{
				Groups: [][]topo.SwitchID{{victim}, rest},
				At:     at,
				HealAt: at + healSpan,
			})
		}
	}
	var opts []flood.Option
	if lossy || len(parts) > 0 {
		inj, err := faults.New(k, faults.Plan{
			Seed:       *seed,
			Default:    faults.LinkFaults{Drop: *drop, Dup: *dup, Jitter: *jitter},
			Partitions: parts,
		})
		if err != nil {
			return err
		}
		opts = append(opts, flood.WithFaults(inj))
		if len(parts) > 0 {
			// A long outage would otherwise be masked by endless
			// retransmission; a tight budget makes the cut a real loss the
			// resync machinery has to repair.
			opts = append(opts, flood.WithRetryBudget(2))
		}
	}
	net, err := flood.New(k, g, *perHop, mode, opts...)
	if err != nil {
		return err
	}
	tf, err := net.FloodTime()
	if err != nil {
		return err
	}
	round := tf + *tc

	cfg := core.Config{
		Net:                 net,
		ComputeTime:         *tc,
		Algorithm:           alg,
		Kinds:               map[lsa.ConnID]mctree.Kind{1: kind},
		ReoptimizeThreshold: *reopt,
		ResyncTimeout:       sim.Time(*resync * float64(round)),
	}
	var tracers core.MultiTracer
	if *trace {
		tracers = append(tracers, &core.WriterTracer{W: w})
	}
	var spans *obs.SpanCollector
	if *traceOut != "" {
		spans = obs.NewSpanCollector(0)
		tracers = append(tracers, spans)
	}
	if len(tracers) > 0 {
		cfg.Tracer = tracers
	}
	d, err := core.NewDomain(k, cfg)
	if err != nil {
		return err
	}
	for _, pt := range parts {
		d.SchedulePartitionHeal(pt)
		fmt.Fprintf(w, "fault: %v, healing at t=%v\n", pt, pt.HealAt)
	}

	wcfg := workload.Config{N: *n, Events: *events, Seed: *seed, Start: round}
	var evs []workload.Event
	if *burst {
		wcfg.Window = round
		evs, err = workload.Bursty(wcfg)
	} else {
		wcfg.MeanGap = 20 * round
		evs, err = workload.Sparse(wcfg)
	}
	if err != nil {
		return err
	}
	if kind == mctree.Asymmetric {
		// Root the MC: make the first join the sender, the rest receivers.
		for i := range evs {
			if evs[i].Join {
				if i == 0 {
					evs[i].Role = mctree.Sender
				} else {
					evs[i].Role = mctree.Receiver
				}
			}
		}
	}
	fmt.Fprintf(w, "network: %d switches, %d links, Tf=%v, Tc=%v, round=%v\n",
		g.NumSwitches(), g.NumLinks(), tf, *tc, round)
	for _, e := range evs {
		verb := "leave"
		if e.Join {
			verb = "join"
			d.Join(e.At, e.Switch, 1, e.Role)
		} else {
			d.Leave(e.At, e.Switch, 1)
		}
		fmt.Fprintf(w, "event: t=%-12v switch %-3d %s\n", e.At, e.Switch, verb)
	}

	st, err := k.Run()
	if err != nil {
		return err
	}
	if err := d.CheckConverged(); err != nil {
		return fmt.Errorf("simulation did not converge: %w", err)
	}

	if *failLink {
		if err := d.CheckConverged(); err != nil {
			return fmt.Errorf("pre-failure state not converged: %w", err)
		}
		if snap, ok := d.Switch(0).Connection(1); ok && snap.Topology != nil && snap.Topology.NumEdges() > 0 {
			edge := snap.Topology.Edges()[0]
			fmt.Fprintf(w, "\nfailing tree link (%d,%d)\n", edge.A, edge.B)
			d.FailLink(k.Now()+round, edge.A, edge.B)
			if st, err = k.Run(); err != nil {
				return err
			}
			repaired, _ := d.Switch(0).Connection(1)
			fmt.Fprintf(w, "repaired topology: %s\n", repaired.Topology)
		} else {
			fmt.Fprintln(w, "\nno tree edges to fail")
		}
	}

	m := d.Metrics()
	fmt.Fprintf(w, "\nconverged at t=%v (%d kernel events)\n", st.End, st.Events)
	fmt.Fprintf(w, "events: %d  computations: %d (%.2f/event)  floodings: %d (%.2f/event)  withdrawn: %d\n",
		m.Events, m.Computations, float64(m.Computations)/float64(m.Events),
		net.Floodings(), float64(net.Floodings())/float64(m.Events), m.Withdrawn)
	if mode == flood.Reliable {
		fmt.Fprintf(w, "transport: %s\n", net.Reliability())
		if m.ResyncRequests > 0 || m.OutOfOrderLSAs > 0 {
			fmt.Fprintf(w, "resync: requests=%d responses=%d out-of-order=%d give-ups=%d\n",
				m.ResyncRequests, m.ResyncResponses, m.OutOfOrderLSAs, m.ResyncGiveUps)
		}
		if outage {
			fmt.Fprintf(w, "heal: reconciles=%d replays=%d re-arms=%d\n",
				m.Reconciles, m.Replays, m.ResyncRearms)
		}
	}
	if snap, ok := d.Switch(0).Connection(1); ok {
		fmt.Fprintf(w, "members: %v\n", snap.Members.IDs())
		if snap.Topology != nil {
			fmt.Fprintf(w, "topology: %s (cost %v)\n", snap.Topology, snap.Topology.Cost(g))
		} else {
			fmt.Fprintln(w, "topology: none (empty membership)")
		}
	} else {
		fmt.Fprintln(w, "connection ended with no members")
	}
	if spans != nil {
		if err := writeSpans(*traceOut, spans); err != nil {
			return err
		}
		stats := spans.Stats()
		fmt.Fprintf(w, "spans: %d chains to %s (mean %.2f computations, %.2f floods, converge %v)\n",
			stats.Spans, *traceOut, stats.MeanComputations, stats.MeanFloods,
			time.Duration(stats.MeanConvergeNS))
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, m, net, st.Events); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: written to %s\n", *metricsOut)
	}
	return nil
}

// parseGroups parses a -partition spec like "0,1/2,3" into switch groups:
// groups are separated by '/', members by ','. Switches left out of every
// group are unconstrained by the split (faults.Partition semantics). An
// empty spec means no partition.
func parseGroups(spec string, n int) ([][]topo.SwitchID, error) {
	if spec == "" {
		return nil, nil
	}
	var groups [][]topo.SwitchID
	seen := map[topo.SwitchID]bool{}
	for _, gs := range strings.Split(spec, "/") {
		var grp []topo.SwitchID
		for _, field := range strings.Split(gs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				return nil, fmt.Errorf("-partition %q: bad switch %q", spec, field)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("-partition %q: switch %d outside [0,%d)", spec, v, n)
			}
			s := topo.SwitchID(v)
			if seen[s] {
				return nil, fmt.Errorf("-partition %q: switch %d listed twice", spec, v)
			}
			seen[s] = true
			grp = append(grp, s)
		}
		groups = append(groups, grp)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("-partition %q: need at least two groups separated by '/'", spec)
	}
	return groups, nil
}

// probeTf computes the flooding diameter of g without building the real
// network, so outage windows phrased in rounds can be converted to virtual
// time before the fault plan is frozen.
func probeTf(g *topo.Graph, perHop time.Duration) (time.Duration, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	net, err := flood.New(k, g, perHop, flood.Direct)
	if err != nil {
		return 0, err
	}
	return net.FloodTime()
}

// writeSpans dumps the collected span trees as JSON.
func writeSpans(path string, spans *obs.SpanCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics exports the run's end-state counters — the domain metrics plus
// the fabric's flood accounting — in Prometheus text format, so a sim run and
// a live daemon scrape are comparable series for series.
func writeMetrics(path string, m *core.Metrics, net *flood.Network, kernelEvents uint64) error {
	reg := obs.NewRegistry()
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"dgmc_machine_events_total", m.Events},
		{"dgmc_machine_computations_total", m.Computations},
		{"dgmc_machine_withdrawn_total", m.Withdrawn},
		{"dgmc_machine_installs_total", m.Installs},
		{"dgmc_machine_mc_lsas_total", m.MCLSAs},
		{"dgmc_machine_non_mc_lsas_total", m.NonMCLSAs},
		{"dgmc_machine_reopt_checks_total", m.ReoptChecks},
		{"dgmc_machine_out_of_order_lsas_total", m.OutOfOrderLSAs},
		{"dgmc_machine_resync_requests_total", m.ResyncRequests},
		{"dgmc_machine_resync_responses_total", m.ResyncResponses},
		{"dgmc_machine_resync_giveups_total", m.ResyncGiveUps},
		{"dgmc_floods_originated_total", net.Floodings()},
		{"dgmc_flood_copies_total", net.Copies()},
		{"dgmc_kernel_events_total", kernelEvents},
	} {
		reg.Counter(c.name).Add(c.v)
	}
	reg.CounterFunc("dgmc_machine_compute_seconds_total", func() float64 {
		return float64(m.ComputeNanos) / 1e9
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
