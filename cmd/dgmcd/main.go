// Command dgmcd runs one live D-GMC switch daemon: one process per switch,
// speaking the wire protocol of internal/lsa over UDP to its neighbors.
// Every daemon in a fabric loads the same topology file, which fixes the
// graph and each switch's address:
//
//	switches 3
//	link 0 1 2ms
//	link 1 2 2ms
//	addr 0 127.0.0.1:7700
//	addr 1 127.0.0.1:7701
//	addr 2 127.0.0.1:7702
//
// Start one daemon per switch and drive membership from stdin:
//
//	dgmcd -topo fabric.topo -id 0
//	> join 7 both
//	> show 7
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/route"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dgmcd", flag.ContinueOnError)
	topoPath := fs.String("topo", "", "topology file shared by every daemon in the fabric (required)")
	id := fs.Int("id", -1, "this daemon's switch ID (required)")
	listen := fs.String("listen", "", "listen address override (default: this switch's addr directive)")
	algName := fs.String("algorithm", "sph", "topology algorithm: sph, kmb, spt, cbt, incremental")
	resync := fs.Duration("resync", 500*time.Millisecond, "gap-recovery timeout; 0 disables (not recommended over UDP)")
	reopt := fs.Float64("reopt", 0, "re-optimization threshold for link recoveries (0 = off)")
	verbose := fs.Bool("v", false, "log the protocol trace to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoPath == "" {
		return fmt.Errorf("-topo is required")
	}
	if *resync < 0 {
		return fmt.Errorf("negative -resync %v", *resync)
	}
	if *reopt < 0 {
		return fmt.Errorf("negative -reopt %v", *reopt)
	}
	alg, err := route.ByName(*algName)
	if err != nil {
		return err
	}
	tf, err := rt.LoadTopology(*topoPath)
	if err != nil {
		return err
	}
	if *id < 0 || *id >= tf.Graph.NumSwitches() {
		return fmt.Errorf("-id %d outside [0,%d)", *id, tf.Graph.NumSwitches())
	}
	cfg := daemonConfig{
		id:        topo.SwitchID(*id),
		topology:  tf,
		listen:    *listen,
		algorithm: alg,
		resync:    *resync,
		reopt:     *reopt,
	}
	if *verbose {
		cfg.logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	d, err := newDaemon(cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Fprintf(stdout, "dgmcd: switch %d on %s, %d neighbors, %d-switch fabric\n",
		d.node.ID(), d.tr.LocalAddr(), len(tf.Graph.Neighbors(d.node.ID())), tf.Graph.NumSwitches())
	return d.repl(stdin, stdout)
}

type daemonConfig struct {
	id        topo.SwitchID
	topology  *rt.Topology
	listen    string // overrides the topology file's addr when non-empty
	algorithm route.Algorithm
	resync    time.Duration
	reopt     float64
	logf      func(format string, args ...any)
}

// daemon is one live switch: a UDP transport plus its rt.Node.
type daemon struct {
	cfg  daemonConfig
	tr   *rt.UDPTransport
	node *rt.Node
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	listen := cfg.listen
	if listen == "" {
		var ok bool
		listen, ok = cfg.topology.Addrs[cfg.id]
		if !ok {
			return nil, fmt.Errorf("topology file has no addr for switch %d (and no -listen given)", cfg.id)
		}
	}
	peers, err := cfg.topology.NeighborAddrs(cfg.id)
	if err != nil {
		return nil, err
	}
	tr, err := rt.NewUDPTransport(listen, peers)
	if err != nil {
		return nil, err
	}
	node, err := rt.NewNode(rt.NodeConfig{
		ID:                  cfg.id,
		Graph:               cfg.topology.Graph,
		Algorithm:           cfg.algorithm,
		ReoptimizeThreshold: cfg.reopt,
		ResyncTimeout:       cfg.resync,
		Logf:                cfg.logf,
	}, tr)
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &daemon{cfg: cfg, tr: tr, node: node}, nil
}

func (d *daemon) Close() error { return d.node.Close() }

// repl reads commands from r until EOF or quit.
func (d *daemon) repl(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		quit, err := d.exec(sc.Text(), w)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		if quit {
			return nil
		}
	}
	return sc.Err()
}

// exec runs one command line.
func (d *daemon) exec(line string, w io.Writer) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	switch fields[0] {
	case "join":
		if len(fields) < 2 || len(fields) > 3 {
			return false, fmt.Errorf("usage: join <conn> [sender|receiver|both]")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		role := mctree.SenderReceiver
		if len(fields) == 3 {
			switch fields[2] {
			case "sender":
				role = mctree.Sender
			case "receiver":
				role = mctree.Receiver
			case "both":
				role = mctree.SenderReceiver
			default:
				return false, fmt.Errorf("unknown role %q", fields[2])
			}
		}
		if err := d.node.Join(conn, role); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "ok: join conn %d as %s\n", conn, role)
	case "leave":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: leave <conn>")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		if err := d.node.Leave(conn); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "ok: leave conn %d\n", conn)
	case "show":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: show <conn>")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		snap, ok := d.node.Connection(conn)
		if !ok {
			fmt.Fprintf(w, "conn %d: no state\n", conn)
			return false, nil
		}
		ids := snap.Members.IDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(w, "conn %d: members=%v R=%s E=%s C=%s\n", conn, ids, snap.R, snap.E, snap.C)
		if snap.Topology != nil {
			fmt.Fprintf(w, "conn %d: topology=%s\n", conn, snap.Topology)
		}
	case "conns":
		fmt.Fprintf(w, "connections: %v\n", d.node.Connections())
	case "metrics":
		m := d.node.Metrics()
		fmt.Fprintf(w, "events=%d computations=%d installs=%d mc-lsas=%d withdrawn=%d resync-req=%d decode-errs=%d\n",
			m.Events, m.Computations, m.Installs, m.MCLSAs, m.Withdrawn, m.ResyncRequests, d.node.DecodeErrors())
	case "help":
		fmt.Fprint(w, "commands: join <conn> [sender|receiver|both], leave <conn>, show <conn>, conns, metrics, quit\n")
	case "quit", "exit":
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return false, nil
}

func parseConn(s string) (lsa.ConnID, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid connection ID %q", s)
	}
	return lsa.ConnID(v), nil
}
