// Command dgmcd runs one live D-GMC switch daemon: one process per switch,
// speaking the wire protocol of internal/lsa over UDP to its neighbors.
// Every daemon in a fabric loads the same topology file, which fixes the
// graph and each switch's address:
//
//	switches 3
//	link 0 1 2ms
//	link 1 2 2ms
//	addr 0 127.0.0.1:7700
//	addr 1 127.0.0.1:7701
//	addr 2 127.0.0.1:7702
//
// Start one daemon per switch and drive membership — and live traffic —
// from stdin:
//
//	dgmcd -topo fabric.topo -id 0
//	> join 7 both
//	> show 7
//	> send 7 hello everyone
//	> stat
//	> quit
//
// Payloads other members send on a joined connection print as they arrive:
//
//	recv conn 7 from switch 2 seq 3: hello back
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgmc/internal/core"
	"dgmc/internal/lsa"
	"dgmc/internal/mctree"
	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmcd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dgmcd", flag.ContinueOnError)
	topoPath := fs.String("topo", "", "topology file shared by every daemon in the fabric (required)")
	id := fs.Int("id", -1, "this daemon's switch ID (required)")
	listen := fs.String("listen", "", "listen address override (default: this switch's addr directive)")
	algName := fs.String("algorithm", "sph", "topology algorithm: sph, kmb, spt, cbt, incremental")
	resync := fs.Duration("resync", 500*time.Millisecond, "gap-recovery timeout; 0 disables (not recommended over UDP)")
	epoch := fs.Uint64("epoch", 0, "restart epoch: bump by one on every restart of the same switch ID; a nonzero epoch cold-rejoins from the neighbors")
	reopt := fs.Float64("reopt", 0, "re-optimization threshold for link recoveries (0 = off)")
	admin := fs.String("admin", "", "admin HTTP listen address serving /metrics, /spans, /state, /healthz, /flightrec, /debug/pprof (off by default)")
	flightrec := fs.Int("flightrec", 0, "flight-recorder ring size in records; 0 disables the recorder and /flightrec stays empty")
	sample := fs.Int("sample", 0, "trace every Nth data packet per source into the hop ring (requires -flightrec; 0 disables path sampling)")
	verbose := fs.Bool("v", false, "log the protocol trace to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoPath == "" {
		return fmt.Errorf("-topo is required")
	}
	if *resync < 0 {
		return fmt.Errorf("negative -resync %v", *resync)
	}
	if *reopt < 0 {
		return fmt.Errorf("negative -reopt %v", *reopt)
	}
	if *flightrec < 0 || *sample < 0 {
		return fmt.Errorf("negative -flightrec/-sample")
	}
	if *sample > 0 && *flightrec == 0 {
		return fmt.Errorf("-sample needs -flightrec to hold the hop records")
	}
	alg, err := route.ByName(*algName)
	if err != nil {
		return err
	}
	tf, err := rt.LoadTopology(*topoPath)
	if err != nil {
		return err
	}
	if *id < 0 || *id >= tf.Graph.NumSwitches() {
		return fmt.Errorf("-id %d outside [0,%d)", *id, tf.Graph.NumSwitches())
	}
	cfg := daemonConfig{
		id:        topo.SwitchID(*id),
		topology:  tf,
		listen:    *listen,
		algorithm: alg,
		resync:    *resync,
		reopt:     *reopt,
		admin:     *admin,
		flightrec: *flightrec,
		sample:    *sample,
		epoch:     *epoch,
		recvW:     stdout,
	}
	if *verbose {
		cfg.logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	d, err := newDaemon(cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Fprintf(stdout, "dgmcd: switch %d on %s, %d neighbors, %d-switch fabric\n",
		d.node.ID(), d.tr.LocalAddr(), len(tf.Graph.Neighbors(d.node.ID())), tf.Graph.NumSwitches())
	if d.adminLn != nil {
		fmt.Fprintf(stdout, "dgmcd: admin on http://%s (/metrics /spans /state /healthz /flightrec /debug/pprof)\n", d.adminLn.Addr())
	}
	return d.repl(stdin, stdout)
}

type daemonConfig struct {
	id        topo.SwitchID
	topology  *rt.Topology
	listen    string // overrides the topology file's addr when non-empty
	algorithm route.Algorithm
	resync    time.Duration
	reopt     float64
	admin     string // admin HTTP listen address; empty disables
	flightrec int    // flight-recorder ring size; 0 disables
	sample    int    // trace every Nth packet per source; 0 disables
	epoch     uint64 // restart epoch; nonzero means crash-restart rejoin
	recvW     io.Writer // delivered payloads print here; nil discards them
	logf      func(format string, args ...any)
}

// daemon is one live switch: a UDP transport plus its rt.Node, and — with
// -admin — an HTTP listener exporting the node's observability surfaces.
type daemon struct {
	cfg  daemonConfig
	tr   *rt.UDPTransport
	node *rt.Node

	registry *obs.Registry
	spans    *obs.SpanCollector
	adminLn  net.Listener
	adminSrv *http.Server
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	listen := cfg.listen
	if listen == "" {
		var ok bool
		listen, ok = cfg.topology.Addrs[cfg.id]
		if !ok {
			return nil, fmt.Errorf("topology file has no addr for switch %d (and no -listen given)", cfg.id)
		}
	}
	peers, err := cfg.topology.NeighborAddrs(cfg.id)
	if err != nil {
		return nil, err
	}
	tr, err := rt.NewUDPTransport(listen, peers)
	if err != nil {
		return nil, err
	}
	d := &daemon{cfg: cfg, tr: tr}
	nodeCfg := rt.NodeConfig{
		ID:                  cfg.id,
		Graph:               cfg.topology.Graph,
		Algorithm:           cfg.algorithm,
		ReoptimizeThreshold: cfg.reopt,
		ResyncTimeout:       cfg.resync,
		Epoch:               cfg.epoch,
		FlightRecords:       cfg.flightrec,
		SampleEvery:         cfg.sample,
		Logf:                cfg.logf,
	}
	if cfg.recvW != nil {
		w := cfg.recvW
		nodeCfg.DataHandler = func(conn lsa.ConnID, src topo.SwitchID, seq uint64, payload []byte) {
			// string(payload) copies — required, since payload aliases a
			// pooled receive buffer that dies when this callback returns.
			fmt.Fprintf(w, "recv conn %d from switch %d seq %d: %s\n", conn, src, seq, string(payload))
		}
	}
	if cfg.admin != "" {
		d.registry = obs.NewRegistry()
		d.spans = obs.NewSpanCollector(0)
		nodeCfg.Registry = d.registry
		nodeCfg.Tracer = d.spans
	}
	node, err := rt.NewNode(nodeCfg, tr)
	if err != nil {
		tr.Close()
		return nil, err
	}
	d.node = node
	if cfg.epoch > 0 {
		// A nonzero epoch marks this process as a restarted incarnation:
		// its volatile state is gone, so ask every neighbor to replay
		// everything before originating anything new.
		node.RejoinFromNeighbors()
	}
	if cfg.admin != "" {
		if err := d.startAdmin(cfg.admin); err != nil {
			node.Close()
			return nil, err
		}
	}
	return d, nil
}

// startAdmin binds the admin listener and serves the obs endpoints on it.
func (d *daemon) startAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin listener: %w", err)
	}
	d.adminLn = ln
	cfg := obs.AdminConfig{
		Registry: d.registry,
		Spans:    d.spans,
		State:    d.stateSnapshot,
		Health:   func() any { return d.node.Health() },
	}
	if d.node.FlightEnabled() {
		cfg.Flight = d.node.FlightDoc
	}
	d.adminSrv = &http.Server{Handler: obs.NewAdminMux(cfg)}
	go d.adminSrv.Serve(ln)
	return nil
}

// adminAddr returns the bound admin address ("" when disabled) — used by
// tests that pass ":0".
func (d *daemon) adminAddr() string {
	if d.adminLn == nil {
		return ""
	}
	return d.adminLn.Addr().String()
}

// stateJSON is the /state document: the daemon's protocol state at a glance.
type stateJSON struct {
	Switch       int             `json:"switch"`
	Addr         string          `json:"addr"`
	Metrics      core.Metrics    `json:"metrics"`
	DecodeErrors uint64          `json:"decode_errors"`
	Forward      rt.ForwardStats `json:"forward"`
	FIBEntries   int             `json:"fib_entries"`
	Connections  []connStateJSON `json:"connections"`
}

type connStateJSON struct {
	Conn     int    `json:"conn"`
	Members  []int  `json:"members"`
	R        string `json:"r"`
	E        string `json:"e"`
	C        string `json:"c"`
	Topology string `json:"topology,omitempty"`
}

// stateSnapshot builds the /state document from live node snapshots.
func (d *daemon) stateSnapshot() any {
	doc := stateJSON{
		Switch:       int(d.node.ID()),
		Addr:         d.tr.LocalAddr().String(),
		Metrics:      d.node.Metrics(),
		DecodeErrors: d.node.DecodeErrors(),
		Forward:      d.node.ForwardStats(),
		FIBEntries:   d.node.FIB().Size(),
		Connections:  []connStateJSON{},
	}
	for _, conn := range d.node.Connections() {
		snap, ok := d.node.Connection(conn)
		if !ok {
			continue
		}
		ids := snap.Members.IDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		members := make([]int, len(ids))
		for i, id := range ids {
			members[i] = int(id)
		}
		cs := connStateJSON{
			Conn:    int(conn),
			Members: members,
			R:       snap.R.String(),
			E:       snap.E.String(),
			C:       snap.C.String(),
		}
		if snap.Topology != nil {
			cs.Topology = snap.Topology.String()
		}
		doc.Connections = append(doc.Connections, cs)
	}
	return doc
}

func (d *daemon) Close() error {
	if d.adminSrv != nil {
		d.adminSrv.Close()
	}
	return d.node.Close()
}

// repl reads commands from r until EOF or quit.
func (d *daemon) repl(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		quit, err := d.exec(sc.Text(), w)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		if quit {
			return nil
		}
	}
	return sc.Err()
}

// exec runs one command line.
func (d *daemon) exec(line string, w io.Writer) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	switch fields[0] {
	case "join":
		if len(fields) < 2 || len(fields) > 3 {
			return false, fmt.Errorf("usage: join <conn> [sender|receiver|both]")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		role := mctree.SenderReceiver
		if len(fields) == 3 {
			switch fields[2] {
			case "sender":
				role = mctree.Sender
			case "receiver":
				role = mctree.Receiver
			case "both":
				role = mctree.SenderReceiver
			default:
				return false, fmt.Errorf("unknown role %q", fields[2])
			}
		}
		if err := d.node.Join(conn, role); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "ok: join conn %d as %s\n", conn, role)
	case "leave":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: leave <conn>")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		if err := d.node.Leave(conn); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "ok: leave conn %d\n", conn)
	case "show":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: show <conn>")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		snap, ok := d.node.Connection(conn)
		if !ok {
			fmt.Fprintf(w, "conn %d: no state\n", conn)
			return false, nil
		}
		ids := snap.Members.IDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(w, "conn %d: members=%v R=%s E=%s C=%s\n", conn, ids, snap.R, snap.E, snap.C)
		if snap.Topology != nil {
			fmt.Fprintf(w, "conn %d: topology=%s\n", conn, snap.Topology)
		}
	case "send":
		if len(fields) < 3 {
			return false, fmt.Errorf("usage: send <conn> <text...>")
		}
		conn, err := parseConn(fields[1])
		if err != nil {
			return false, err
		}
		seq, err := d.node.SendData(conn, []byte(strings.Join(fields[2:], " ")))
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "ok: sent conn %d seq %d\n", conn, seq)
	case "stat":
		s := d.node.ForwardStats()
		fmt.Fprintf(w, "data: originated=%d forwarded=%d delivered=%d drops=%d (no-entry=%d no-route=%d hop-budget=%d loop=%d) fib-entries=%d fib-compiles=%d\n",
			s.Originated, s.Forwarded, s.Delivered, s.Drops(),
			s.DropNoEntry, s.DropNoRoute, s.DropHops, s.DropLoop,
			d.node.FIB().Size(), d.node.FIBCompiles())
	case "health":
		h := d.node.Health()
		state := "converged"
		if !h.Converged {
			state = "CONVERGING"
		}
		fmt.Fprintf(w, "health: %s conns=%d gapped=%v resync-armed=%v gave-up=%v gap-depth=%d fib-entries=%d\n",
			state, h.Conns, h.GappedConns, h.ResyncArmedConns, h.GiveUpConns, h.GapBufferDepth, h.FIBEntries)
		if h.Anomaly != "" {
			fmt.Fprintf(w, "health: last anomaly %s %dms ago (flight records written: %d)\n",
				h.Anomaly, h.AnomalyAgeMS, h.FlightWritten)
		}
	case "conns":
		fmt.Fprintf(w, "connections: %v\n", d.node.Connections())
	case "metrics":
		m := d.node.Metrics()
		fmt.Fprintf(w, "events=%d computations=%d installs=%d mc-lsas=%d withdrawn=%d resync-req=%d decode-errs=%d\n",
			m.Events, m.Computations, m.Installs, m.MCLSAs, m.Withdrawn, m.ResyncRequests, d.node.DecodeErrors())
	case "help":
		fmt.Fprint(w, "commands: join <conn> [sender|receiver|both], leave <conn>, show <conn>, send <conn> <text...>, stat, health, conns, metrics, quit\n")
	case "quit", "exit":
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return false, nil
}

func parseConn(s string) (lsa.ConnID, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid connection ID %q", s)
	}
	return lsa.ConnID(v), nil
}
