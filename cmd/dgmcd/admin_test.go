package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dgmc/internal/obs"
	"dgmc/internal/route"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestThreeDaemonAdminSurfaces boots three daemons over UDP loopback with
// admin listeners, drives one membership change, and then — from the scraped
// HTTP surfaces alone — reconstructs the event→compute→flood→recv→install
// chain of that change and reads its measured convergence latency.
func TestThreeDaemonAdminSurfaces(t *testing.T) {
	ports := reservePorts(t, 3)
	path := writeTopoFile(t, ports)
	tf, err := rt.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}

	daemons := make([]*daemon, 3)
	for i := range daemons {
		d, err := newDaemon(daemonConfig{
			id:        topo.SwitchID(i),
			topology:  tf,
			algorithm: route.SPH{},
			resync:    100 * time.Millisecond,
			admin:     "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
		if d.adminAddr() == "" {
			t.Fatalf("daemon %d has no admin listener", i)
		}
	}

	var out strings.Builder
	if _, err := daemons[0].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	if _, err := daemons[2].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		agreed := true
		for _, d := range daemons {
			snap, ok := d.node.Connection(7)
			if !ok || len(snap.Members) != 2 || snap.Topology == nil ||
				!snap.R.Equal(snap.C) || !snap.R.Geq(snap.E) {
				agreed = false
				break
			}
		}
		if agreed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemons did not agree on conn 7 within 15s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics: Prometheus text with live protocol counters on every daemon.
	for i, d := range daemons {
		code, body := httpGet(t, "http://"+d.adminAddr()+"/metrics")
		if code != 200 {
			t.Fatalf("daemon %d /metrics = %d", i, code)
		}
		for _, want := range []string{
			"# TYPE dgmc_machine_installs_total counter",
			fmt.Sprintf(`dgmc_machine_installs_total{switch="%d"}`, i),
			"# TYPE dgmc_lsa_batch_seconds histogram",
			`_bucket{`,
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("daemon %d /metrics missing %q:\n%s", i, want, body)
			}
		}
		if strings.Contains(body, fmt.Sprintf(`dgmc_machine_installs_total{switch="%d"} 0`, i)) {
			t.Fatalf("daemon %d reports zero installs after convergence", i)
		}
	}

	// /state: every daemon shows conn 7 with both members and a topology.
	for i, d := range daemons {
		code, body := httpGet(t, "http://"+d.adminAddr()+"/state")
		if code != 200 {
			t.Fatalf("daemon %d /state = %d", i, code)
		}
		var doc struct {
			Switch      int `json:"switch"`
			Connections []struct {
				Conn     int    `json:"conn"`
				Members  []int  `json:"members"`
				R        string `json:"r"`
				C        string `json:"c"`
				Topology string `json:"topology"`
			} `json:"connections"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("daemon %d /state not JSON: %v", i, err)
		}
		if doc.Switch != i || len(doc.Connections) != 1 {
			t.Fatalf("daemon %d /state = %+v", i, doc)
		}
		conn := doc.Connections[0]
		if conn.Conn != 7 || len(conn.Members) != 2 || conn.Topology == "" || conn.R != conn.C {
			t.Fatalf("daemon %d conn state = %+v", i, conn)
		}
	}

	// /spans: merge the three daemons' span documents and reconstruct the
	// full distributed chain of switch 0's join (chain "0/1").
	merged := map[string]obs.Span{}
	for i, d := range daemons {
		code, body := httpGet(t, "http://"+d.adminAddr()+"/spans")
		if code != 200 {
			t.Fatalf("daemon %d /spans = %d", i, code)
		}
		var doc struct {
			Spans []obs.Span `json:"spans"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("daemon %d /spans not JSON: %v", i, err)
		}
		if len(doc.Spans) == 0 {
			t.Fatalf("daemon %d collected no spans", i)
		}
		for _, sp := range doc.Spans {
			agg := merged[sp.Chain]
			agg.Chain = sp.Chain
			agg.Computations += sp.Computations
			agg.Floods += sp.Floods
			agg.Recvs += sp.Recvs
			agg.Installs += sp.Installs
			agg.Steps = append(agg.Steps, sp.Steps...)
			if agg.StartNS == 0 || (sp.StartNS > 0 && sp.StartNS < agg.StartNS) {
				agg.StartNS = sp.StartNS
			}
			if sp.EndNS > agg.EndNS {
				agg.EndNS = sp.EndNS
			}
			merged[sp.Chain] = agg
		}
	}
	chain, ok := merged["0/1"]
	if !ok {
		t.Fatalf("no merged span for switch 0's first event; have %v", keys(merged))
	}
	// The full causal sequence for one membership change: the origin's
	// event, at least one computation and flood, receipt at the other
	// switches, and an installation at every switch.
	kinds := map[string]int{}
	for _, step := range chain.Steps {
		kinds[step.Kind]++
	}
	if kinds["event"] != 1 {
		t.Errorf("chain 0/1 has %d event steps, want 1", kinds["event"])
	}
	if chain.Computations == 0 || kinds["compute"] == 0 {
		t.Error("chain 0/1 shows no computation")
	}
	if chain.Floods == 0 || kinds["flood"] == 0 {
		t.Error("chain 0/1 shows no flood")
	}
	if kinds["recv"] == 0 {
		t.Error("chain 0/1 was never received at another switch")
	}
	if chain.Installs < 3 {
		t.Errorf("chain 0/1 installed at %d switches, want all 3", chain.Installs)
	}
	// Convergence latency across daemons: wall-clock timestamps are shared
	// (UnixNano), so last install minus the event is the measured latency.
	var eventNS, lastInstallNS int64
	for _, step := range chain.Steps {
		switch step.Kind {
		case "event":
			eventNS = step.AtNS
		case "install":
			if step.AtNS > lastInstallNS {
				lastInstallNS = step.AtNS
			}
		}
	}
	latency := lastInstallNS - eventNS
	if latency <= 0 {
		t.Fatalf("measured convergence latency %d ns, want > 0", latency)
	}
	if latency > int64(15*time.Second) {
		t.Fatalf("measured convergence latency %v is absurd", time.Duration(latency))
	}
	t.Logf("chain 0/1: %d computations, %d floods, %d installs, converged in %v",
		chain.Computations, chain.Floods, chain.Installs, time.Duration(latency))

	// pprof rides the same listener.
	if code, _ := httpGet(t, "http://"+daemons[0].adminAddr()+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof endpoint = %d", code)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDaemonHealthAndFlightRecorder boots a recorder-enabled 3-daemon UDP
// fabric, pushes live traffic, and checks the PR-9 surfaces end to end: the
// `health` REPL verb, the /healthz JSON document, and a /flightrec dump that
// carries the forwarded packet's sampled hop records.
func TestDaemonHealthAndFlightRecorder(t *testing.T) {
	ports := reservePorts(t, 3)
	path := writeTopoFile(t, ports)
	tf, err := rt.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	daemons := make([]*daemon, 3)
	for i := range daemons {
		d, err := newDaemon(daemonConfig{
			id:        topo.SwitchID(i),
			topology:  tf,
			algorithm: route.SPH{},
			resync:    100 * time.Millisecond,
			admin:     "127.0.0.1:0",
			flightrec: 256,
			sample:    1, // sample every packet: the test sends only a few
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
	}

	var out strings.Builder
	if _, err := daemons[0].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	if _, err := daemons[2].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		converged := true
		for _, d := range daemons {
			if h := d.node.Health(); !h.Converged || h.Conns != 1 {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemons never reported converged health")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := daemons[0].exec("send 7 traced packet", &out); err != nil {
		t.Fatal(err)
	}
	// The frame crosses two UDP hops; wait until the far member recorded
	// its delivery rather than sleeping blind.
	deadline = time.Now().Add(10 * time.Second)
	for daemons[2].node.ForwardStats().Delivered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch 2 never delivered the traced packet")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// REPL surface.
	out.Reset()
	if _, err := daemons[0].exec("health", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "health: converged conns=1") {
		t.Fatalf("health verb output: %q", out.String())
	}

	// HTTP surfaces: /healthz on every daemon, /flightrec on the path.
	for i, d := range daemons {
		code, body := httpGet(t, "http://"+d.adminAddr()+"/healthz")
		if code != 200 {
			t.Fatalf("daemon %d /healthz = %d", i, code)
		}
		var h rt.NodeHealth
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("daemon %d /healthz not JSON: %v", i, err)
		}
		if h.Switch != i || !h.Converged || h.Conns != 1 {
			t.Fatalf("daemon %d /healthz = %+v", i, h)
		}
	}
	var docs []*obs.FlightDoc
	for i, d := range daemons {
		code, body := httpGet(t, "http://"+d.adminAddr()+"/flightrec")
		if code != 200 {
			t.Fatalf("daemon %d /flightrec = %d", i, code)
		}
		var doc obs.FlightDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("daemon %d /flightrec not JSON: %v", i, err)
		}
		if doc.Switch != uint32(i) || doc.Written == 0 {
			t.Fatalf("daemon %d /flightrec = switch %d, %d written", i, doc.Switch, doc.Written)
		}
		docs = append(docs, &doc)
	}
	// The three dumps must join into the packet's complete 0→1→2 path.
	reports := obs.ReconstructPaths(docs)
	found := false
	for _, rep := range reports {
		if rep.Conn == 7 && rep.Src == 0 && rep.Complete && rep.Delivered > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no complete path for the traced packet among %d reports", len(reports))
	}
}

// TestAdminFlagBadAddress checks a malformed -admin address fails startup.
func TestAdminFlagBadAddress(t *testing.T) {
	ports := reservePorts(t, 2)
	path := writeTopoFile(t, ports)
	var out strings.Builder
	if err := run([]string{"-topo", path, "-id", "0", "-admin", "256.0.0.1:bad"},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("bad -admin address accepted")
	}
}
