package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dgmc/internal/lsa"
	"dgmc/internal/route"
	"dgmc/internal/rt"
	"dgmc/internal/topo"
)

// reservePorts grabs n distinct loopback UDP ports. The sockets are closed
// before the daemons bind, so a tiny reuse race exists — fine for a test.
func reservePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	conns := make([]*net.UDPConn, n)
	for i := range ports {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

func writeTopoFile(t *testing.T, ports []int) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "switches %d\n", len(ports))
	for i := 0; i+1 < len(ports); i++ {
		fmt.Fprintf(&b, "link %d %d 1ms\n", i, i+1)
	}
	for i, p := range ports {
		fmt.Fprintf(&b, "addr %d 127.0.0.1:%d\n", i, p)
	}
	path := filepath.Join(t.TempDir(), "fabric.topo")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestThreeDaemonFabric boots three daemons in one process over real UDP
// loopback sockets, joins an MC at the two ends of the line, and waits for
// all three switches to agree.
func TestThreeDaemonFabric(t *testing.T) {
	ports := reservePorts(t, 3)
	path := writeTopoFile(t, ports)
	tf, err := rt.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}

	daemons := make([]*daemon, 3)
	for i := range daemons {
		d, err := newDaemon(daemonConfig{
			id:        topo.SwitchID(i),
			topology:  tf,
			algorithm: route.SPH{},
			resync:    100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
	}

	var out strings.Builder
	if _, err := daemons[0].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	if _, err := daemons[2].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		agreed := true
		for _, d := range daemons {
			snap, ok := d.node.Connection(7)
			if !ok || len(snap.Members) != 2 || snap.Topology == nil ||
				!snap.R.Equal(snap.C) || !snap.R.Geq(snap.E) {
				agreed = false
				break
			}
		}
		if agreed {
			break
		}
		if time.Now().After(deadline) {
			for _, d := range daemons {
				snap, ok := d.node.Connection(7)
				t.Logf("switch %d: ok=%v snap=%+v", d.node.ID(), ok, snap)
			}
			t.Fatal("daemons did not agree on conn 7 within 15s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The installed tree must span 0 and 2 — on a line, through 1.
	snap, _ := daemons[1].node.Connection(7)
	if !snap.Topology.On(0) || !snap.Topology.On(2) || !snap.Topology.On(1) {
		t.Fatalf("tree does not span the line: %s", snap.Topology)
	}

	// Command-layer sanity on a live daemon.
	out.Reset()
	if _, err := daemons[0].exec("show 7", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "members=[0 2]") {
		t.Fatalf("show output: %q", out.String())
	}
	out.Reset()
	if _, err := daemons[0].exec("metrics", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events=1") {
		t.Fatalf("metrics output: %q", out.String())
	}
	if quit, _ := daemons[0].exec("quit", &out); !quit {
		t.Fatal("quit did not quit")
	}
	if _, err := daemons[0].exec("frobnicate", &out); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := daemons[0].exec("join x", &out); err == nil {
		t.Fatal("bad connection ID accepted")
	}
}

// syncBuf is a writer safe for the delivery callback, which runs on the
// node's receive goroutine while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonSendRecv pushes a live payload across a 3-daemon UDP fabric:
// `send` at one end must print as a `recv` line at the other, and `stat`
// must account for the frame at both ends.
func TestDaemonSendRecv(t *testing.T) {
	ports := reservePorts(t, 3)
	path := writeTopoFile(t, ports)
	tf, err := rt.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	daemons := make([]*daemon, 3)
	recvs := make([]*syncBuf, 3)
	for i := range daemons {
		recvs[i] = &syncBuf{}
		d, err := newDaemon(daemonConfig{
			id:        topo.SwitchID(i),
			topology:  tf,
			algorithm: route.SPH{},
			resync:    100 * time.Millisecond,
			recvW:     recvs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
	}

	var out strings.Builder
	if _, err := daemons[0].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	if _, err := daemons[2].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		agreed := true
		for _, d := range daemons {
			snap, ok := d.node.Connection(7)
			if !ok || len(snap.Members) != 2 || snap.Topology == nil ||
				!snap.R.Equal(snap.C) || !snap.R.Geq(snap.E) {
				agreed = false
				break
			}
		}
		if agreed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemons did not agree on conn 7")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Sending before joining is refused at the origin.
	if _, err := daemons[1].exec("send 7 not a member", &out); err == nil {
		t.Fatal("non-member send accepted")
	}

	out.Reset()
	if _, err := daemons[0].exec("send 7 hello fabric", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok: sent conn 7") {
		t.Fatalf("send output: %q", out.String())
	}
	want := "recv conn 7 from switch 0"
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(recvs[2].String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("switch 2 never printed %q; got %q", want, recvs[2].String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(recvs[2].String(), "hello fabric") {
		t.Fatalf("payload mangled: %q", recvs[2].String())
	}
	if got := recvs[1].String(); got != "" {
		t.Fatalf("relay switch delivered to its app: %q", got)
	}

	out.Reset()
	if _, err := daemons[0].exec("stat", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "originated=1") {
		t.Fatalf("stat output: %q", out.String())
	}
	if _, err := daemons[0].exec("send 7", &out); err == nil {
		t.Fatal("send without text accepted")
	}
}

// TestDaemonCrashRestartRejoin kills the middle daemon of a 3-switch line,
// injects an event the dead switch blocks from propagating, then boots a
// blank successor at the next restart epoch: the rejoin must rebuild the
// old state from the neighbors AND carry the missed event across the
// fabric (the restarted switch re-floods what the replay taught it).
func TestDaemonCrashRestartRejoin(t *testing.T) {
	ports := reservePorts(t, 3)
	path := writeTopoFile(t, ports)
	tf, err := rt.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	boot := func(id int, epoch uint64) *daemon {
		d, err := newDaemon(daemonConfig{
			id:        topo.SwitchID(id),
			topology:  tf,
			algorithm: route.SPH{},
			resync:    100 * time.Millisecond,
			epoch:     epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	daemons := make([]*daemon, 3)
	for i := range daemons {
		daemons[i] = boot(i, 0)
		defer func(d *daemon) { d.Close() }(daemons[i])
	}
	var out strings.Builder
	if _, err := daemons[0].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	if _, err := daemons[2].exec("join 7 both", &out); err != nil {
		t.Fatal(err)
	}
	waitAgree := func(conn lsa.ConnID, members int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			agreed := true
			for _, d := range daemons {
				snap, ok := d.node.Connection(conn)
				if !ok || len(snap.Members) != members ||
					!snap.R.Equal(snap.C) || !snap.R.Geq(snap.E) {
					agreed = false
					break
				}
			}
			if agreed {
				return
			}
			if time.Now().After(deadline) {
				for _, d := range daemons {
					snap, ok := d.node.Connection(conn)
					t.Logf("switch %d: ok=%v snap=%+v", d.node.ID(), ok, snap)
				}
				t.Fatalf("daemons did not agree on conn %d", conn)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitAgree(7, 2)

	// Crash the middle switch, then originate an event its outage strands
	// on one side of the line.
	daemons[1].Close()
	if _, err := daemons[0].exec("join 8 both", &out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	daemons[1] = boot(1, 1)
	if got := daemons[1].node.Epoch(); got != 1 {
		t.Fatalf("restarted epoch = %d, want 1", got)
	}
	// The blank successor must relearn conn 7 from its neighbors, and its
	// replayed knowledge of conn 8 must reach switch 2.
	waitAgree(7, 2)
	waitAgree(8, 1)
}

func TestRunFlagValidation(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{},                          // missing -topo
		{"-topo", "/nonexistent"},   // unreadable file
		{"-topo", "x", "-id", "-2"}, // parse order: topo fails first, still an error
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}

	ports := reservePorts(t, 2)
	path := writeTopoFile(t, ports)
	if err := run([]string{"-topo", path, "-id", "9"}, strings.NewReader(""), &out); err == nil {
		t.Error("out-of-range -id accepted")
	}
	if err := run([]string{"-topo", path, "-id", "0", "-resync", "-1s"}, strings.NewReader(""), &out); err == nil {
		t.Error("negative -resync accepted")
	}
	if err := run([]string{"-topo", path, "-id", "0", "-algorithm", "magic"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown -algorithm accepted")
	}
	if err := run([]string{"-topo", path, "-id", "0", "-flightrec", "-1"}, strings.NewReader(""), &out); err == nil {
		t.Error("negative -flightrec accepted")
	}
	if err := run([]string{"-topo", path, "-id", "0", "-sample", "8"}, strings.NewReader(""), &out); err == nil {
		t.Error("-sample without -flightrec accepted")
	}

	// A well-formed invocation with EOF on stdin starts and exits cleanly.
	out.Reset()
	if err := run([]string{"-topo", path, "-id", "0"}, strings.NewReader("help\nconns\n"), &out); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if !strings.Contains(out.String(), "dgmcd: switch 0") {
		t.Fatalf("banner missing: %q", out.String())
	}
}
