// Command dgmctop is a cluster-wide health console for a dgmc fabric: it
// scrapes every daemon's admin /healthz endpoint and renders one live table —
// per-switch throughput, the four-way drop taxonomy, convergence and
// gap-recovery state, and anomaly flags — plus a one-line cluster summary.
//
//	dgmctop -targets 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102
//
// Each refresh re-scrapes all targets in parallel; per-second rates come from
// the delta between consecutive frames. A daemon that fails to answer shows
// as DOWN and stays in the table. Use -once for a single non-interactive
// frame (e.g. from scripts), -frames N to stop after N refreshes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"dgmc/internal/rt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgmctop:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dgmctop", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated daemon admin addresses (host:port) to scrape (required)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval between frames")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	frames := fs.Int("frames", 0, "stop after N frames (0 = run until interrupted)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-target scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targets == "" {
		return fmt.Errorf("-targets is required")
	}
	if *interval <= 0 || *timeout <= 0 {
		return fmt.Errorf("-interval and -timeout must be positive")
	}
	var list []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			list = append(list, t)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("-targets has no addresses")
	}
	max := *frames
	if *once {
		max = 1
	}
	top := &top{
		targets:  list,
		client:   &http.Client{Timeout: *timeout},
		interval: *interval,
		clear:    !*once,
		prev:     make(map[int]rateSample),
	}
	for n := 0; max == 0 || n < max; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		top.frame(stdout)
	}
	return nil
}

// top holds the scrape loop's state: the target list and the previous
// frame's counters, from which per-second rates are derived.
type top struct {
	targets  []string
	client   *http.Client
	interval time.Duration
	clear    bool
	prev     map[int]rateSample
}

// rateSample is one switch's counters at one scrape instant.
type rateSample struct {
	at        time.Time
	forwarded uint64
	delivered uint64
	drops     uint64
}

// row is one scraped target: its health document, or the error that kept it
// out of this frame.
type row struct {
	target string
	h      rt.NodeHealth
	err    error
}

// frame scrapes every target in parallel and renders one table.
func (t *top) frame(w io.Writer) {
	rows := make([]row, len(t.targets))
	var wg sync.WaitGroup
	for i, target := range t.targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			rows[i] = t.scrape(target)
		}(i, target)
	}
	wg.Wait()
	// Stable display order: by switch ID when known, then by target string
	// (unreachable daemons sort last, where the eye expects the problem).
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if (a.err == nil) != (b.err == nil) {
			return a.err == nil
		}
		if a.err == nil {
			return a.h.Switch < b.h.Switch
		}
		return a.target < b.target
	})
	t.render(w, rows, time.Now())
}

func (t *top) scrape(target string) row {
	r := row{target: target}
	resp, err := t.client.Get("http://" + target + "/healthz")
	if err != nil {
		r.err = err
		return r
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		r.err = err
		return r
	}
	if resp.StatusCode != http.StatusOK {
		r.err = fmt.Errorf("status %d", resp.StatusCode)
		return r
	}
	r.err = json.Unmarshal(body, &r.h)
	return r
}

func (t *top) render(w io.Writer, rows []row, now time.Time) {
	if t.clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	up, converged := 0, 0
	var dlvRate float64
	next := make(map[int]rateSample, len(rows))

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "SW\tSTATE\tCONNS\tFWD/s\tDLV/s\tORIG\tFWD\tDLV\tDROPS ne/nr/hb/lp\tGAP\tFIB\tANOMALY")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "?\tDOWN\t-\t-\t-\t-\t-\t-\t-\t-\t-\t%s: %v\n", r.target, r.err)
			continue
		}
		up++
		h := r.h
		state := "conv"
		if !h.Converged {
			state = "SYNCING"
		} else {
			converged++
		}
		cur := rateSample{
			at:        now,
			forwarded: h.Forward.Forwarded,
			delivered: h.Forward.Delivered,
			drops:     h.Forward.Drops(),
		}
		next[h.Switch] = cur
		fwdR, dlvR := "-", "-"
		if prev, ok := t.prev[h.Switch]; ok && now.After(prev.at) {
			dt := now.Sub(prev.at).Seconds()
			fr := float64(cur.forwarded-prev.forwarded) / dt
			dr := float64(cur.delivered-prev.delivered) / dt
			fwdR, dlvR = fmt.Sprintf("%.0f", fr), fmt.Sprintf("%.0f", dr)
			dlvRate += dr
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d/%d/%d/%d\t%d\t%d\t%s\n",
			h.Switch, state, h.Conns, fwdR, dlvR,
			h.Forward.Originated, h.Forward.Forwarded, h.Forward.Delivered,
			h.Forward.DropNoEntry, h.Forward.DropNoRoute, h.Forward.DropHops, h.Forward.DropLoop,
			h.GapBufferDepth, h.FIBEntries, anomalyCell(h))
	}
	tw.Flush()
	fmt.Fprintf(w, "cluster: %d/%d up, %d/%d converged, %.0f pkt/s delivered  (%s)\n",
		up, len(rows), converged, up, dlvRate, now.Format("15:04:05"))
	t.prev = next
}

// anomalyCell folds a health document's warning signals into one short flag
// column: live gap/resync/give-up state first, then the most recent recorded
// anomaly with its age.
func anomalyCell(h rt.NodeHealth) string {
	var flags []string
	if len(h.GappedConns) > 0 {
		flags = append(flags, fmt.Sprintf("gapped%v", h.GappedConns))
	}
	if len(h.ResyncArmedConns) > 0 {
		flags = append(flags, fmt.Sprintf("resync%v", h.ResyncArmedConns))
	}
	if len(h.GiveUpConns) > 0 {
		flags = append(flags, fmt.Sprintf("GIVEUP%v", h.GiveUpConns))
	}
	if h.Anomaly != "" && h.AnomalyAgeMS >= 0 {
		flags = append(flags, fmt.Sprintf("%s %s ago",
			h.Anomaly, (time.Duration(h.AnomalyAgeMS)*time.Millisecond).Round(time.Millisecond)))
	}
	if len(flags) == 0 {
		return "ok"
	}
	return strings.Join(flags, " ")
}
