package main

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"dgmc/internal/obs"
	"dgmc/internal/rt"
)

// healthServer serves a canned (mutable) NodeHealth document on a real admin
// mux, exactly the surface dgmctop scrapes in production.
func healthServer(t *testing.T, h func() rt.NodeHealth) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(obs.NewAdminMux(obs.AdminConfig{
		Health: func() any { return h() },
	}))
	t.Cleanup(srv.Close)
	return srv
}

func addr(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestTopOnce renders a single frame over three scraped daemons — two
// healthy, one mid-recovery — and checks the table rows, the anomaly flags,
// and the cluster summary line.
func TestTopOnce(t *testing.T) {
	healthy := func(sw int) func() rt.NodeHealth {
		return func() rt.NodeHealth {
			return rt.NodeHealth{
				Switch: sw, Conns: 2, Converged: true,
				FIBEntries: 2, AnomalyAgeMS: -1,
				Forward: rt.ForwardStats{Originated: 10, Forwarded: 40, Delivered: 20},
			}
		}
	}
	degraded := func() rt.NodeHealth {
		return rt.NodeHealth{
			Switch: 2, Conns: 2, Converged: false,
			GappedConns:      []uint32{7},
			ResyncArmedConns: []uint32{7},
			GapBufferDepth:   3,
			Forward:          rt.ForwardStats{Forwarded: 5, DropLoop: 1},
			Anomaly:          "drop-loop", AnomalyAgeMS: 1500,
		}
	}
	srvs := []*httptest.Server{
		healthServer(t, healthy(0)),
		healthServer(t, healthy(1)),
		healthServer(t, degraded),
	}
	var out strings.Builder
	err := run([]string{
		"-targets", addr(srvs[0]) + "," + addr(srvs[1]) + "," + addr(srvs[2]),
		"-once",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"SW", "DROPS ne/nr/hb/lp", // header
		"0/0/0/1",                 // the degraded switch's drop taxonomy
		"gapped[7]", "resync[7]", "drop-loop 1.5s ago", // anomaly flags
		"cluster: 3/3 up, 2/3 converged",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("frame missing %q:\n%s", want, got)
		}
	}
	// One row per switch, in ID order, with the degraded daemon flagged.
	for _, pat := range []string{`(?m)^0\s+conv`, `(?m)^1\s+conv`, `(?m)^2\s+SYNCING`} {
		if !regexp.MustCompile(pat).MatchString(got) {
			t.Fatalf("frame missing row %q:\n%s", pat, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Fatal("-once frame cleared the screen")
	}
}

// TestTopRates runs two frames against a daemon whose delivered counter
// advances between scrapes: the second frame must show nonzero per-second
// rates derived from the delta.
func TestTopRates(t *testing.T) {
	var scrapes atomic.Uint64
	srv := healthServer(t, func() rt.NodeHealth {
		n := scrapes.Add(1)
		return rt.NodeHealth{
			Switch: 0, Conns: 1, Converged: true, AnomalyAgeMS: -1,
			Forward: rt.ForwardStats{Forwarded: 1000 * n, Delivered: 500 * n},
		}
	})
	var out strings.Builder
	if err := run([]string{"-targets", addr(srv), "-frames", "2", "-interval", "20ms"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Frame 1 has no previous sample → "-" rates; frame 2 must have numbers.
	frames := strings.Split(got, "\x1b[2J\x1b[H")
	last := frames[len(frames)-1]
	if !strings.Contains(last, "conv") {
		t.Fatalf("no rendered row in final frame:\n%s", got)
	}
	if strings.Contains(last, "\t-\t-\t") || strings.Contains(last, " -  - ") {
		t.Fatalf("final frame still shows placeholder rates:\n%s", last)
	}
	if !strings.Contains(got, "pkt/s delivered") {
		t.Fatalf("summary rate line missing:\n%s", got)
	}
}

// TestTopDownTarget keeps an unreachable daemon in the table as DOWN without
// failing the frame.
func TestTopDownTarget(t *testing.T) {
	srv := healthServer(t, func() rt.NodeHealth {
		return rt.NodeHealth{Switch: 0, Converged: true, AnomalyAgeMS: -1}
	})
	dead := httptest.NewServer(nil)
	deadAddr := addr(dead)
	dead.Close() // port is now closed: connection refused

	var out strings.Builder
	err := run([]string{"-targets", addr(srv) + "," + deadAddr, "-once", "-timeout", "500ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "DOWN") || !strings.Contains(got, deadAddr) {
		t.Fatalf("dead target not flagged DOWN:\n%s", got)
	}
	if !strings.Contains(got, "cluster: 1/2 up") {
		t.Fatalf("summary does not count the dead target:\n%s", got)
	}
}

func TestTopFlagValidation(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{},                               // missing -targets
		{"-targets", " , "},              // only empty addresses
		{"-targets", "x", "-interval", "0"},  // bad interval
		{"-targets", "x", "-timeout", "-1s"}, // bad timeout
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
